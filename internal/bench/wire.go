package bench

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"strings"
	"time"

	"ivnt/internal/cluster"
	"ivnt/internal/colcodec"
	"ivnt/internal/engine"
	"ivnt/internal/relation"
	"ivnt/internal/telemetry"
)

// WireOptions tune the wire-protocol experiment.
type WireOptions struct {
	// Rows in the streamed trace relation; default 20000.
	Rows int
	// Partitions (= tasks per stage); default 16.
	Partitions int
	// TableRows in the broadcast unit table; default 256.
	TableRows int
	// Executors and slots per executor for the loopback cluster.
	Executors, Slots int
	// Compress turns on DEFLATE for v3 partition payloads.
	Compress bool
	// Level is the DEFLATE level for compressed payloads (0 =
	// flate.BestSpeed, the driver default; see colcodec.Options.Level).
	Level int
	// Tracer/Tasks, when set, are handed to the cluster driver so the
	// run produces a task-level trace and a live /tasks view.
	Tracer *telemetry.Tracer
	Tasks  *telemetry.TaskTable
}

func (o WireOptions) withDefaults() WireOptions {
	if o.Rows <= 0 {
		o.Rows = 20000
	}
	if o.Partitions <= 0 {
		o.Partitions = 16
	}
	if o.TableRows <= 0 {
		o.TableRows = 256
	}
	if o.Executors <= 0 {
		o.Executors = 2
	}
	if o.Slots <= 0 {
		o.Slots = 2
	}
	return o
}

// WireResult is one measurement of protocol v3 against a simulated
// protocol-v2 baseline for the same broadcast-join stage.
type WireResult struct {
	Rows, Partitions, Tasks int
	Compress                bool

	// Measured v3 traffic (driver byte counters: handshakes, stage
	// shipments, task payloads, results).
	V3BytesSent, V3BytesRecv int64
	V3BytesPerTask           float64
	StagesShipped            int

	// Simulated v2 traffic: per-task gob messages carrying schema, ops
	// (with the full broadcast table embedded) and row-wise partitions,
	// plus gob result rows — exactly what the pre-v3 protocol sent.
	// Encoded through one gob stream, so type descriptors are charged
	// once (conservative: favors v2).
	V2BytesPerTask float64

	// Reduction = V2BytesPerTask / V3BytesPerTask.
	Reduction float64

	// Driver-side codec cost, per input row.
	EncodeNsPerRow, DecodeNsPerRow float64

	// Task latency quantiles (seconds) from the telemetry task_seconds
	// histogram delta across this run.
	TaskP50Sec, TaskP95Sec, TaskP99Sec float64

	WallSec float64
}

// v2TaskMsg mirrors the retired protocol-v2 task frame: every task
// re-shipped the input schema, the full op list (broadcast tables
// inline) and its partition as row-wise gob.
type v2TaskMsg struct {
	ID, Epoch uint64
	Schema    relation.Schema
	Rows      []relation.Row
	Ops       []engine.OpDesc
}

// v2ResultMsg mirrors the retired v2 result frame.
type v2ResultMsg struct {
	ID, Epoch uint64
	Rows      []relation.Row
	Err       string
}

// wireStage builds the measured stage: a trace stream broadcast-joined
// with a unit/rule table, then per-row rule evaluation — Algorithm 1's
// interpretation join, the stage the v3 protocol was built for.
func wireStage(opts WireOptions) (*relation.Relation, []engine.OpDesc) {
	streamSchema := relation.NewSchema(
		relation.Column{Name: "t", Kind: relation.KindFloat},
		relation.Column{Name: "mid", Kind: relation.KindInt},
		relation.Column{Name: "x", Kind: relation.KindInt},
	)
	rows := make([]relation.Row, opts.Rows)
	for i := range rows {
		rows[i] = relation.Row{
			relation.Float(float64(i) * 0.01),
			relation.Int(int64(i % opts.TableRows)),
			relation.Int(int64(i%4096) - 2048),
		}
	}
	rel := relation.FromRows(streamSchema, rows).Repartition(opts.Partitions)

	tableSchema := relation.NewSchema(
		relation.Column{Name: "mid", Kind: relation.KindInt},
		relation.Column{Name: "name", Kind: relation.KindString},
		relation.Column{Name: "rule", Kind: relation.KindString},
	)
	trows := make([]relation.Row, opts.TableRows)
	for i := range trows {
		trows[i] = relation.Row{
			relation.Int(int64(i)),
			relation.Str(fmt.Sprintf("unit-%03d/signal-channel-%d", i, i%7)),
			relation.Str(fmt.Sprintf("x * %d.0 / 128.0 + %d.0", i%13+1, i%29)),
		}
	}
	small := relation.FromRows(tableSchema, trows)

	// Join, evaluate, then project down to the interpreted signal stream
	// — the rule/name columns exist only to drive evaluation and never
	// travel back, exactly as in Algorithm 1's interpretation step.
	ops := []engine.OpDesc{
		engine.BroadcastJoin(small, []string{"mid"}, []string{"mid"}),
		engine.EvalRule("v", relation.KindFloat, "rule"),
		engine.Project("t", "mid", "v"),
	}
	return rel, ops
}

// Wire runs the broadcast-join stage once over a loopback cluster with
// protocol v3 and compares measured bytes per task against the
// simulated v2 baseline for the identical stage.
func Wire(ctx context.Context, opts WireOptions) (*WireResult, error) {
	opts = opts.withDefaults()
	rel, ops := wireStage(opts)

	addrs, stop, err := cluster.StartLocalCluster(ctx, opts.Executors)
	if err != nil {
		return nil, err
	}
	defer stop()
	drv := &cluster.Driver{
		Addrs:            addrs,
		SlotsPerExecutor: opts.Slots,
		Compress:         opts.Compress,
		CompressLevel:    opts.Level,
		Tracer:           opts.Tracer,
		Tasks:            opts.Tasks,
	}
	taskHistBefore := telemetry.Default().HistogramData("task_seconds")
	start := time.Now()
	out, st, err := drv.RunStage(ctx, rel, ops)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	taskHist := telemetry.Default().HistogramData("task_seconds").Sub(taskHistBefore)

	res := &WireResult{
		Rows:          rel.NumRows(),
		Partitions:    rel.NumPartitions(),
		Tasks:         st.Tasks,
		Compress:      opts.Compress,
		V3BytesSent:   st.BytesSent,
		V3BytesRecv:   st.BytesRecv,
		StagesShipped: st.StagesShipped,
		TaskP50Sec:    taskHist.Quantile(0.5),
		TaskP95Sec:    taskHist.Quantile(0.95),
		TaskP99Sec:    taskHist.Quantile(0.99),
		WallSec:       wall.Seconds(),
	}
	if st.Tasks > 0 {
		res.V3BytesPerTask = float64(st.BytesSent+st.BytesRecv) / float64(st.Tasks)
	}
	if n := rel.NumRows(); n > 0 {
		res.EncodeNsPerRow = float64(st.EncodeWall.Nanoseconds()) / float64(n)
		res.DecodeNsPerRow = float64(st.DecodeWall.Nanoseconds()) / float64(out.NumRows())
	}

	// Simulate the v2 wire: one gob stream per direction (descriptors
	// charged once per connection, as a v2 driver would), one task and
	// one result message per partition.
	var v2 bytes.Buffer
	enc := gob.NewEncoder(&v2)
	for pi, part := range rel.Partitions {
		if err := enc.Encode(&v2TaskMsg{
			ID: uint64(pi + 1), Epoch: 1,
			Schema: rel.Schema, Rows: part, Ops: ops,
		}); err != nil {
			return nil, fmt.Errorf("wire: v2 task encode: %w", err)
		}
	}
	renc := gob.NewEncoder(&v2)
	for pi, part := range out.Partitions {
		if err := renc.Encode(&v2ResultMsg{ID: uint64(pi + 1), Epoch: 1, Rows: part}); err != nil {
			return nil, fmt.Errorf("wire: v2 result encode: %w", err)
		}
	}
	res.V2BytesPerTask = float64(v2.Len()) / float64(rel.NumPartitions())
	if res.V3BytesPerTask > 0 {
		res.Reduction = res.V2BytesPerTask / res.V3BytesPerTask
	}
	return res, nil
}

// WireCodec measures raw codec throughput on one partition of the wire
// stage, outside any cluster — the ns/op figures for BENCH_engine.json.
// Level pins the DEFLATE trade-off the driver default rests on: 0
// (flate.BestSpeed) vs flate.BestCompression encode cost per byte
// saved.
type WireCodecResult struct {
	RowsPerPartition int
	Compress         bool
	Level            int
	EncodeNsPerOp    float64
	DecodeNsPerOp    float64
	EncodedBytes     int
}

// WireCodec encodes and decodes a single partition repeatedly.
func WireCodec(opts WireOptions) (*WireCodecResult, error) {
	opts = opts.withDefaults()
	rel, _ := wireStage(opts)
	part := rel.Partitions[0]
	o := colcodec.Options{Compress: opts.Compress, Level: opts.Level}

	data, err := colcodec.Encode(rel.Schema, part, o)
	if err != nil {
		return nil, err
	}
	const iters = 50
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := colcodec.Encode(rel.Schema, part, o); err != nil {
			return nil, err
		}
	}
	encNs := float64(time.Since(start).Nanoseconds()) / iters
	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, err := colcodec.Decode(rel.Schema, data); err != nil {
			return nil, err
		}
	}
	decNs := float64(time.Since(start).Nanoseconds()) / iters
	return &WireCodecResult{
		RowsPerPartition: len(part),
		Compress:         opts.Compress,
		Level:            opts.Level,
		EncodeNsPerOp:    encNs,
		DecodeNsPerOp:    decNs,
		EncodedBytes:     len(data),
	}, nil
}

// FormatWire renders wire results as an aligned table.
func FormatWire(results []*WireResult) string {
	var b strings.Builder
	b.WriteString("Wire: protocol v3 (stage-once + columnar) vs simulated v2 (per-task gob), broadcast-join stage\n")
	fmt.Fprintf(&b, "%9s %6s %9s %14s %14s %10s %8s %12s %12s %9s %9s %9s\n",
		"compress", "tasks", "stages", "v2 B/task", "v3 B/task", "reduction", "wall[s]", "enc ns/row", "dec ns/row",
		"p50[ms]", "p95[ms]", "p99[ms]")
	for _, r := range results {
		fmt.Fprintf(&b, "%9v %6d %9d %14.0f %14.0f %9.2fx %8.3f %12.1f %12.1f %9.2f %9.2f %9.2f\n",
			r.Compress, r.Tasks, r.StagesShipped, r.V2BytesPerTask, r.V3BytesPerTask,
			r.Reduction, r.WallSec, r.EncodeNsPerRow, r.DecodeNsPerRow,
			r.TaskP50Sec*1e3, r.TaskP95Sec*1e3, r.TaskP99Sec*1e3)
	}
	return b.String()
}
