package bench

import (
	"fmt"
	"strings"
	"time"

	"ivnt/internal/engine"
	"ivnt/internal/memgov"
	"ivnt/internal/telemetry"
)

// SpillOptions tune the memory-governed degradation experiment.
type SpillOptions struct {
	// Rows in the measured partition; default 20000.
	Rows int
	// Budget for the governed run; default footprint/4, low enough that
	// every sort and aggregation takes the external path.
	Budget int64
	// Target wall time per measurement; default 200ms.
	Target time.Duration
}

func (o SpillOptions) withDefaults() SpillOptions {
	if o.Rows <= 0 {
		o.Rows = 20000
	}
	if o.Target <= 0 {
		o.Target = 200 * time.Millisecond
	}
	return o
}

// SpillResult is one governed workload measured twice: unlimited (the
// in-memory kernel) and under a budget that forces the external
// algorithm. Slowdown is the price of degrading to disk instead of
// OOMing; SpillEvents/SpillBytes come from the engine_spills_total and
// engine_spill_bytes_total counter deltas, per governed run.
type SpillResult struct {
	Workload string
	Rows     int
	Budget   int64

	InMemNsPerRow float64
	SpillNsPerRow float64
	Slowdown      float64

	SpillEvents int64
	SpillBytes  int64
	HighWater   int64
}

// spillWorkloads are the governed kernels: per-partition sort and
// grace-hash partial aggregation over the pipeline trace shape.
func spillWorkloads() []struct {
	Name string
	Ops  []engine.OpDesc
} {
	return []struct {
		Name string
		Ops  []engine.OpDesc
	}{
		{"sortwithin", []engine.OpDesc{engine.SortWithin("mid", "t")}},
		{"partialagg", []engine.OpDesc{engine.PartialAgg(
			[]string{"bid", "mid"},
			[]engine.AggSpec{
				{Fn: engine.AggCount, As: "n"},
				{Fn: engine.AggSum, Col: "v", As: "vsum"},
				{Fn: engine.AggMean, Col: "v", As: "vmean"},
			})}},
	}
}

// Spill measures the memory-governed kernels with and without a budget
// — the "spill" section of BENCH_engine.json.
func Spill(opts SpillOptions) ([]*SpillResult, error) {
	opts = opts.withDefaults()
	schema := pipelineSchema()
	part := pipelineRows(opts.Rows)
	budget := opts.Budget
	if budget <= 0 {
		budget = engine.RowsFootprint(part) / 4
	}

	g := memgov.Default()
	oldBudget := g.Budget()
	defer g.SetBudget(oldBudget)
	reg := telemetry.Default()

	var results []*SpillResult
	for _, w := range spillWorkloads() {
		pipe, err := engine.NewStagePipeline(schema, w.Ops)
		if err != nil {
			return nil, fmt.Errorf("spill %s: %w", w.Name, err)
		}

		g.SetBudget(0) // unlimited: the in-memory kernel
		inMemNs, _, err := measurePath(part, opts.Target, pipe.ApplyRows)
		if err != nil {
			return nil, fmt.Errorf("spill %s (in-mem): %w", w.Name, err)
		}

		g.SetBudget(budget)
		g.ResetHighWater()
		eventsBefore := reg.CounterValue("engine_spills_total")
		bytesBefore := reg.CounterValue("engine_spill_bytes_total")
		spillNs, _, err := measurePath(part, opts.Target, pipe.ApplyRows)
		if err != nil {
			return nil, fmt.Errorf("spill %s (governed): %w", w.Name, err)
		}
		events := reg.CounterValue("engine_spills_total") - eventsBefore
		bytes := reg.CounterValue("engine_spill_bytes_total") - bytesBefore
		if events == 0 {
			return nil, fmt.Errorf("spill %s: budget %d did not force the external path", w.Name, budget)
		}

		r := &SpillResult{
			Workload:      w.Name,
			Rows:          opts.Rows,
			Budget:        budget,
			InMemNsPerRow: inMemNs,
			SpillNsPerRow: spillNs,
			SpillEvents:   events,
			SpillBytes:    bytes,
			HighWater:     g.HighWater(),
		}
		if inMemNs > 0 {
			r.Slowdown = spillNs / inMemNs
		}
		results = append(results, r)
	}
	return results, nil
}

// FormatSpill renders spill results as an aligned table. See
// docs/MEMORY.md for how to read the columns.
func FormatSpill(results []*SpillResult) string {
	var b strings.Builder
	b.WriteString("Spill: governed kernels under a memory budget vs unlimited (external merge sort / grace hash agg)\n")
	fmt.Fprintf(&b, "%-12s %7s %12s %13s %13s %9s %8s %13s %12s\n",
		"workload", "rows", "budget [B]", "mem ns/row", "spill ns/row", "slowdown", "spills", "spilled [B]", "highwater")
	for _, r := range results {
		fmt.Fprintf(&b, "%-12s %7d %12d %13.1f %13.1f %8.2fx %8d %13d %12d\n",
			r.Workload, r.Rows, r.Budget, r.InMemNsPerRow, r.SpillNsPerRow, r.Slowdown,
			r.SpillEvents, r.SpillBytes, r.HighWater)
	}
	return b.String()
}
