package bench

import (
	"context"
	"strings"
	"testing"
)

var ctx = context.Background()

// tiny scales keep the unit tests fast; the real runs happen via
// cmd/benchmark and the root bench_test.go.
const tinyScale = 0.0002

func TestTable5MatchesPaperStructure(t *testing.T) {
	rows := Table5(tinyScale)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := map[string][4]int{
		"SYN": {13, 6, 4, 3},
		"LIG": {180, 27, 71, 82},
		"STA": {78, 6, 1, 71},
	}
	for _, r := range rows {
		w := want[r.Name]
		if r.SignalTypes != w[0] || r.Alpha != w[1] || r.Beta != w[2] || r.Gamma != w[3] {
			t.Errorf("%s: (%d, %d, %d, %d), want %v",
				r.Name, r.SignalTypes, r.Alpha, r.Beta, r.Gamma, w)
		}
		if r.Examples == 0 {
			t.Errorf("%s: no examples", r.Name)
		}
	}
	out := FormatTable5(rows, tinyScale)
	for _, frag := range []string{"SYN", "LIG", "STA", "# signal types - alpha", "180"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("format missing %q:\n%s", frag, out)
		}
	}
}

func TestFig5ProducesMonotoneExampleSeries(t *testing.T) {
	points, err := Fig5(ctx, Fig5Options{Scale: tinyScale, Steps: 3, Datasets: []string{"SYN"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Examples <= points[i-1].Examples {
			t.Fatalf("examples not increasing: %+v", points)
		}
	}
	for _, p := range points {
		if p.Seconds <= 0 {
			t.Fatalf("non-positive time: %+v", p)
		}
	}
	out := FormatFig5(points)
	if !strings.Contains(out, "SYN") {
		t.Fatalf("format:\n%s", out)
	}
	slopes := Fig5Slope(points)
	if _, ok := slopes["SYN"]; !ok {
		t.Fatal("slope missing")
	}
}

func TestFig5UnknownDataset(t *testing.T) {
	if _, err := Fig5(ctx, Fig5Options{Datasets: []string{"NOPE"}, Scale: tinyScale, Steps: 2}); err == nil {
		t.Fatal("unknown dataset must fail")
	}
}

func TestTable6ShapeClaims(t *testing.T) {
	rows, err := Table6(ctx, Table6Options{
		Scale:        2e-5, // ~9.6k rows per journey
		Journeys:     []int{1, 3},
		SignalCounts: []int{9, 89},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[[2]int]Table6Row{}
	for _, r := range rows {
		byKey[[2]int{r.Journeys, r.Signals}] = r
		if r.InhouseSec <= 0 || r.ProposedSec <= 0 {
			t.Fatalf("non-positive time: %+v", r)
		}
		if r.ExtractedRows == 0 {
			t.Fatalf("nothing extracted: %+v", r)
		}
	}
	// Shape claim 1: in-house time is flat in #signals (same journeys).
	a, b := byKey[[2]int{3, 9}], byKey[[2]int{3, 89}]
	if a.InhouseSec != b.InhouseSec {
		t.Fatalf("in-house time must be independent of signals: %v vs %v", a.InhouseSec, b.InhouseSec)
	}
	// Shape claim 2: proposed extracts fewer rows for fewer signals.
	if a.ExtractedRows >= b.ExtractedRows {
		t.Fatalf("extracted rows: 9 signals %d vs 89 signals %d", a.ExtractedRows, b.ExtractedRows)
	}
	// Shape claim 3: extraction with fewer signals is not slower.
	if a.ProposedSec > b.ProposedSec*1.5 {
		t.Fatalf("9-signal extraction slower than 89-signal: %v vs %v", a.ProposedSec, b.ProposedSec)
	}
	out := FormatTable6(rows, Table6Options{Scale: 2e-5})
	if !strings.Contains(out, "speedup") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestAblationPreselect(t *testing.T) {
	r, err := AblationPreselect(ctx, tinyScale, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Correctness claim: both paths interpret the same relevant rows.
	if r.InterpretedWith != r.InterpretedWithout {
		t.Fatalf("row counts differ: %d vs %d", r.InterpretedWith, r.InterpretedWithout)
	}
	if r.WithSec <= 0 || r.WithoutSec <= 0 {
		t.Fatalf("non-positive times: %+v", r)
	}
	if !strings.Contains(FormatPreselect(r), "preselection") {
		t.Fatal("format broken")
	}
}

func TestAblationScaling(t *testing.T) {
	points, err := AblationScaling(ctx, tinyScale, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 2 || points[0].Workers != 1 {
		t.Fatalf("points = %+v", points)
	}
	if points[0].Speedup != 1 {
		t.Fatalf("baseline speedup = %v", points[0].Speedup)
	}
	if !strings.Contains(FormatScaling(points), "workers") {
		t.Fatal("format broken")
	}
}

func TestAblationReduction(t *testing.T) {
	rows, err := AblationReduction(ctx, tinyScale, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Ratio <= 0 || r.Ratio >= 1 {
			t.Errorf("%s: reduction ratio %v not in (0,1) — traces are redundant by construction", r.Dataset, r.Ratio)
		}
		if r.KsRows == 0 {
			t.Errorf("%s: no K_s rows", r.Dataset)
		}
	}
	if !strings.Contains(FormatReduction(rows), "ratio") {
		t.Fatal("format broken")
	}
}

func TestAblationStorage(t *testing.T) {
	rows, err := AblationStorage(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.RawBytes == 0 || r.EagerInstances == 0 {
			t.Fatalf("%s: empty measurement %+v", r.Dataset, r)
		}
		// Sec. 3.2: the eager store must blow up relative to raw,
		// most for LIG (5.11 signals/message).
		if r.Blowup <= 1 {
			t.Errorf("%s: blowup = %v, want > 1", r.Dataset, r.Blowup)
		}
	}
	if !strings.Contains(FormatStorage(rows), "blowup") {
		t.Fatal("format broken")
	}
}
