package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ivnt/internal/engine"
	"ivnt/internal/relation"
	"ivnt/internal/segstore"
	"ivnt/internal/telemetry"
)

// ScanOptions tune the segment-store scan experiment.
type ScanOptions struct {
	// Segments in the store; default 32.
	Segments int
	// RowsPerSeg is each segment's row count; default 8000.
	RowsPerSeg int
	// Iters: each plan runs this many times and reports its best wall
	// time (the store is on disk either way; iterating damps scheduler
	// noise); default 3.
	Iters int
	// Compress runs segment chunks through DEFLATE; default on — it is
	// how extract writes stores, and it is the cost pruning avoids.
	Compress bool
	// Dir is the store directory; empty = a temp dir (removed after).
	Dir string
}

func (o ScanOptions) withDefaults() ScanOptions {
	if o.Segments <= 0 {
		o.Segments = 32
	}
	if o.RowsPerSeg <= 0 {
		o.RowsPerSeg = 8000
	}
	if o.Iters <= 0 {
		o.Iters = 3
	}
	return o
}

// ScanResult is one plan's measurement of the same selective query
// against the same on-disk segment store.
type ScanResult struct {
	Plan string

	Segments, RowsPerSeg, RowsTotal int
	// SegmentsScanned/SegmentsPruned/BytesDecoded are per-run telemetry
	// deltas: how many segment files had chunks decoded, how many were
	// skipped on zone maps alone, and how many chunk bytes were read.
	SegmentsScanned, SegmentsPruned int
	BytesDecoded                    int64
	OutRows                         int

	// Speedup = the family baseline's wall / this plan's wall (1.0 on
	// the baseline row: "full" for the pruning family, "fullscan-raw"
	// for the encoding family).
	Speedup float64
	WallSec float64
}

// Scan measures what the zone-map scan path buys on the paper's
// workload shape: a store of time-clustered segments (monotone ts, the
// layout extract's segment-per-signal writer produces) queried with a
// selective filter. The "full" plan decodes every segment cold and
// filters in the engine; the "pushdown" plan folds the same filter into
// the scan, prunes segments by footer alone, and decodes only the
// projected columns of the survivors. Both run the identical ops, so
// outputs must agree row for row (enforced here; the difftest scan
// invariant holds it bitwise).
//
// A second family measures what the column encodings buy where pruning
// cannot help: a low-cardinality store (piecewise-constant val, a
// three-mode sid — the shape reduced signal sequences have) queried
// with a full-scan-by-construction filter, as raw chunks
// ("fullscan-raw"), dict/RLE-encoded chunks ("fullscan-enc") and the
// same encoded store after background compaction ("fullscan-compact").
// The returned slice is [full, pushdown, fullscan-raw, fullscan-enc,
// fullscan-compact].
func Scan(ctx context.Context, opts ScanOptions) ([]*ScanResult, error) {
	opts = opts.withDefaults()
	dir := opts.Dir
	if dir == "" {
		td, err := os.MkdirTemp("", "ivnt-scanbench-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(td)
		dir = td
	}
	s := relation.NewSchema(
		relation.Column{Name: "ts", Kind: relation.KindInt},
		relation.Column{Name: "val", Kind: relation.KindFloat},
		relation.Column{Name: "sid", Kind: relation.KindString},
	)
	st, err := segstore.Open(filepath.Join(dir, "selective"), s, segstore.Options{Compress: opts.Compress})
	if err != nil {
		return nil, err
	}
	for g := 0; g < opts.Segments; g++ {
		rows := make([]relation.Row, opts.RowsPerSeg)
		for i := range rows {
			ts := g*opts.RowsPerSeg + i
			rows[i] = relation.Row{
				relation.Int(int64(ts)),
				relation.Float(float64(ts%977) * 0.125),
				relation.Str(fmt.Sprintf("signal-%03d", ts%311)),
			}
		}
		if err := st.AppendSegment(rows); err != nil {
			return nil, err
		}
	}
	total := opts.Segments * opts.RowsPerSeg
	// The query: the trailing segment's worth of the trace, two of the
	// three columns — a "recent window" lookup over a time-keyed store.
	ops := []engine.OpDesc{
		engine.Filter(fmt.Sprintf("ts >= %d", total-opts.RowsPerSeg)),
		engine.Project("ts", "val"),
	}
	local := engine.NewLocal(0)

	reg := telemetry.Default()
	measure := func(plan string, run func() (*relation.Relation, error)) (*ScanResult, error) {
		res := &ScanResult{
			Plan: plan, Segments: opts.Segments,
			RowsPerSeg: opts.RowsPerSeg, RowsTotal: total,
		}
		best := time.Duration(0)
		for it := 0; it < opts.Iters; it++ {
			scanned := reg.CounterValue("segstore_segments_scanned_total")
			pruned := reg.CounterValue("segstore_segments_pruned_total")
			decoded := reg.CounterValue("segstore_bytes_decoded_total")
			start := time.Now()
			out, err := run()
			wall := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("scan bench: %s plan: %w", plan, err)
			}
			if best == 0 || wall < best {
				best = wall
				res.SegmentsScanned = int(reg.CounterValue("segstore_segments_scanned_total") - scanned)
				res.SegmentsPruned = int(reg.CounterValue("segstore_segments_pruned_total") - pruned)
				res.BytesDecoded = reg.CounterValue("segstore_bytes_decoded_total") - decoded
				res.OutRows = out.NumRows()
			}
		}
		res.WallSec = best.Seconds()
		return res, nil
	}

	full, err := measure("full", func() (*relation.Relation, error) {
		rel, err := st.Scan(ctx, engine.Pushdown{})
		if err != nil {
			return nil, err
		}
		out, _, err := local.RunStage(ctx, rel, ops)
		return out, err
	})
	if err != nil {
		return nil, err
	}
	push, err := measure("pushdown", func() (*relation.Relation, error) {
		out, _, err := engine.ScanStage(ctx, local, st, ops)
		return out, err
	})
	if err != nil {
		return nil, err
	}
	if full.OutRows != push.OutRows {
		return nil, fmt.Errorf("scan bench: plans disagree: full produced %d rows, pushdown %d",
			full.OutRows, push.OutRows)
	}
	full.Speedup = 1
	if push.WallSec > 0 {
		push.Speedup = full.WallSec / push.WallSec
	}

	// Encoding family: same segment layout, low-cardinality rows — val
	// holds 64-row runs over 32 levels, sid 512-row runs over 3 modes,
	// so every segment contains every level and every mode and the zone
	// maps prune nothing. The query is decode-bound by construction, and
	// DEFLATE stays off in all three stores so BytesDecoded (on-disk
	// chunk bytes) isolates what dict/RLE buy over raw varint/LE chunks.
	modes := []string{"drive", "idle", "charge"}
	buildLow := func(sub string, o segstore.Options) (*segstore.Store, error) {
		ls, err := segstore.Open(filepath.Join(dir, sub), s, o)
		if err != nil {
			return nil, err
		}
		for g := 0; g < opts.Segments; g++ {
			rows := make([]relation.Row, opts.RowsPerSeg)
			for i := range rows {
				ts := g*opts.RowsPerSeg + i
				rows[i] = relation.Row{
					relation.Int(int64(ts)),
					relation.Float(float64((ts / 64) % 32)),
					relation.Str(modes[(ts/512)%3]),
				}
			}
			if err := ls.AppendSegment(rows); err != nil {
				return nil, err
			}
		}
		return ls, nil
	}
	lowOps := []engine.OpDesc{
		engine.Filter("sid == 'drive' && val >= 8"),
		engine.Project("ts", "val"),
	}
	results := []*ScanResult{full, push}
	var rawLow *ScanResult
	for _, v := range []struct {
		plan    string
		sub     string
		o       segstore.Options
		compact bool
	}{
		{"fullscan-raw", "lowcard-raw", segstore.Options{}, false},
		{"fullscan-enc", "lowcard-enc", segstore.Options{Encodings: true}, false},
		{"fullscan-compact", "lowcard-compact", segstore.Options{Encodings: true}, true},
	} {
		ls, err := buildLow(v.sub, v.o)
		if err != nil {
			return nil, err
		}
		if v.compact {
			if _, err := ls.Compact(segstore.CompactOptions{}); err != nil {
				return nil, err
			}
		}
		r, err := measure(v.plan, func() (*relation.Relation, error) {
			out, _, err := engine.ScanStage(ctx, local, ls, lowOps)
			return out, err
		})
		if err != nil {
			return nil, err
		}
		if rawLow == nil {
			rawLow = r
			r.Speedup = 1
		} else {
			if r.OutRows != rawLow.OutRows {
				return nil, fmt.Errorf("scan bench: plans disagree: fullscan-raw produced %d rows, %s %d",
					rawLow.OutRows, v.plan, r.OutRows)
			}
			if r.WallSec > 0 {
				r.Speedup = rawLow.WallSec / r.WallSec
			}
		}
		results = append(results, r)
	}
	return results, nil
}

// FormatScan renders the plan comparison as an aligned table.
func FormatScan(results []*ScanResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-17s %6s %9s %9s %8s %8s %12s %9s %9s %8s\n",
		"plan", "segs", "rows/seg", "rows", "scanned", "pruned",
		"decoded_B", "out_rows", "wall_ms", "speedup")
	for _, r := range results {
		fmt.Fprintf(&b, "%-17s %6d %9d %9d %8d %8d %12d %9d %9.1f %7.2fx\n",
			r.Plan, r.Segments, r.RowsPerSeg, r.RowsTotal, r.SegmentsScanned,
			r.SegmentsPruned, r.BytesDecoded, r.OutRows, r.WallSec*1e3, r.Speedup)
	}
	return b.String()
}
