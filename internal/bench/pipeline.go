package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"ivnt/internal/engine"
	"ivnt/internal/relation"
)

// PipelineOptions tune the vectorized-vs-row pipeline experiment.
type PipelineOptions struct {
	// Rows in the measured partition; default 8192.
	Rows int
	// Target wall time per (workload, path) measurement; default 200ms.
	Target time.Duration
}

func (o PipelineOptions) withDefaults() PipelineOptions {
	if o.Rows <= 0 {
		o.Rows = 8192
	}
	if o.Target <= 0 {
		o.Target = 200 * time.Millisecond
	}
	return o
}

// PipelineResult is one workload measured on both engine paths: the
// row-at-a-time reference (StagePipeline.ApplyRows) and the vectorized
// batch path (ApplyVectorized). ns/row and allocs/row are the columns
// the acceptance bar is stated in — the fused workload must reach ≥2x
// ns/row and ≥4x fewer allocs/row on the vectorized path.
type PipelineResult struct {
	Workload string
	Rows     int

	RowNsPerRow     float64
	RowAllocsPerRow float64
	VecNsPerRow     float64
	VecAllocsPerRow float64

	// Speedup = RowNsPerRow / VecNsPerRow; AllocRatio likewise.
	Speedup    float64
	AllocRatio float64
}

// pipelineSchema is the measured trace-stream shape: timestamp, bus
// id, message id, payload bytes, a decoded signal value and a per-row
// interpretation rule (a small set of distinct rules, as a broadcast
// rule table would produce).
func pipelineSchema() relation.Schema {
	return relation.NewSchema(
		relation.Column{Name: "t", Kind: relation.KindFloat},
		relation.Column{Name: "bid", Kind: relation.KindString},
		relation.Column{Name: "mid", Kind: relation.KindInt},
		relation.Column{Name: "l", Kind: relation.KindBytes},
		relation.Column{Name: "v", Kind: relation.KindFloat},
		relation.Column{Name: "rule", Kind: relation.KindString},
	)
}

func pipelineRows(n int) []relation.Row {
	rng := rand.New(rand.NewSource(42))
	rules := []string{
		"v * 2.0 + byteat(l, 0)",
		"coalesce(v, 0.0) - byteat(l, 1)",
		"iff(mid == 3, v, 0.0 - v)",
	}
	rows := make([]relation.Row, n)
	for i := range rows {
		v := relation.Float(rng.Float64() * 100)
		if rng.Intn(4) == 0 {
			v = relation.Null()
		}
		rows[i] = relation.Row{
			relation.Float(float64(i) * 0.001),
			relation.Str(fmt.Sprintf("bus%d", i%2)),
			relation.Int(int64(i % 5)),
			relation.Bytes([]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}),
			v,
			relation.Str(rules[i%len(rules)]),
		}
	}
	return rows
}

func pipelineJoinTable() *relation.Relation {
	s := relation.NewSchema(
		relation.Column{Name: "rmid", Kind: relation.KindInt},
		relation.Column{Name: "sid", Kind: relation.KindString},
		relation.Column{Name: "scale", Kind: relation.KindFloat},
	)
	rows := make([]relation.Row, 5)
	for i := range rows {
		rows[i] = relation.Row{
			relation.Int(int64(i)),
			relation.Str(fmt.Sprintf("signal-%d", i)),
			relation.Float(0.5 + float64(i)*0.25),
		}
	}
	return relation.FromRows(s, rows)
}

// pipelineWorkloads are the measured op shapes: one workload per
// kernel for per-op columns, plus the fused Filter→Project→AddColumn
// chain the acceptance bar is set against.
func pipelineWorkloads() []struct {
	Name string
	Ops  []engine.OpDesc
} {
	return []struct {
		Name string
		Ops  []engine.OpDesc
	}{
		{"filter", []engine.OpDesc{engine.Filter("mid != 2 && byteat(l, 0) < 128")}},
		{"project", []engine.OpDesc{engine.Project("t", "mid", "v")}},
		{"addcolumn", []engine.OpDesc{engine.AddColumn("b0", relation.KindInt, "byteat(l, 0)")}},
		{"evalrule", []engine.OpDesc{engine.EvalRule("rv", relation.KindFloat, "rule")}},
		{"broadcast-join", []engine.OpDesc{engine.BroadcastJoin(pipelineJoinTable(), []string{"mid"}, []string{"rmid"})}},
		{"sortwithin", []engine.OpDesc{engine.SortWithin("mid", "t")}},
		{"fused-filter-project-addcolumn", []engine.OpDesc{
			engine.Filter("mid != 2 && byteat(l, 0) < 192"),
			engine.Project("t", "mid", "l", "v"),
			engine.AddColumn("b0", relation.KindInt, "byteat(l, 0)"),
			engine.AddColumn("x", relation.KindFloat, "coalesce(v, 0.0) * 0.5 + b0"),
		}},
	}
}

// measurePath times one apply function over the partition until the
// target wall time is reached, reporting ns/row and allocs/row (from
// the runtime's monotonic Mallocs counter, so background GC does not
// distort it).
func measurePath(part []relation.Row, target time.Duration, apply func([]relation.Row) ([]relation.Row, error)) (nsPerRow, allocsPerRow float64, err error) {
	// Warm-up: faults pages, fills the rule cache and sizes sync.Pool
	// scratch, and gives a per-iteration estimate.
	t0 := time.Now()
	if _, err := apply(part); err != nil {
		return 0, 0, err
	}
	per := time.Since(t0)
	iters := 3
	if per > 0 {
		if n := int(target / per); n > iters {
			iters = n
		}
	}

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := apply(part); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	denom := float64(iters) * float64(len(part))
	return float64(elapsed.Nanoseconds()) / denom, float64(m1.Mallocs-m0.Mallocs) / denom, nil
}

// Pipeline measures every workload on the row-at-a-time reference path
// and the vectorized batch path — the "pipeline" section of
// BENCH_engine.json.
func Pipeline(opts PipelineOptions) ([]*PipelineResult, error) {
	opts = opts.withDefaults()
	schema := pipelineSchema()
	part := pipelineRows(opts.Rows)

	var results []*PipelineResult
	for _, w := range pipelineWorkloads() {
		pipe, err := engine.NewStagePipeline(schema, w.Ops)
		if err != nil {
			return nil, fmt.Errorf("pipeline %s: %w", w.Name, err)
		}
		rowNs, rowAllocs, err := measurePath(part, opts.Target, pipe.ApplyRows)
		if err != nil {
			return nil, fmt.Errorf("pipeline %s (rows): %w", w.Name, err)
		}
		vecNs, vecAllocs, err := measurePath(part, opts.Target, pipe.ApplyVectorized)
		if err != nil {
			return nil, fmt.Errorf("pipeline %s (vec): %w", w.Name, err)
		}
		r := &PipelineResult{
			Workload:        w.Name,
			Rows:            opts.Rows,
			RowNsPerRow:     rowNs,
			RowAllocsPerRow: rowAllocs,
			VecNsPerRow:     vecNs,
			VecAllocsPerRow: vecAllocs,
		}
		if vecNs > 0 {
			r.Speedup = rowNs / vecNs
		}
		if vecAllocs > 0 {
			r.AllocRatio = rowAllocs / vecAllocs
		}
		results = append(results, r)
	}
	return results, nil
}

// FormatPipeline renders pipeline results as an aligned table. See
// docs/PERFORMANCE.md for how to read the columns.
func FormatPipeline(results []*PipelineResult) string {
	var b strings.Builder
	b.WriteString("Pipeline: vectorized batch path vs row-at-a-time reference, per-op ns/row and allocs/row\n")
	fmt.Fprintf(&b, "%-32s %6s %12s %12s %8s %14s %14s %8s\n",
		"workload", "rows", "row ns/row", "vec ns/row", "speedup", "row allocs/row", "vec allocs/row", "ratio")
	for _, r := range results {
		fmt.Fprintf(&b, "%-32s %6d %12.1f %12.1f %7.2fx %14.3f %14.3f %7.1fx\n",
			r.Workload, r.Rows, r.RowNsPerRow, r.VecNsPerRow, r.Speedup,
			r.RowAllocsPerRow, r.VecAllocsPerRow, r.AllocRatio)
	}
	return b.String()
}
