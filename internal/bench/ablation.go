package bench

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"ivnt/internal/core"
	"ivnt/internal/engine"
	"ivnt/internal/gen"
	"ivnt/internal/inhouse"
	"ivnt/internal/interp"
	"ivnt/internal/trace"
)

// ---------------------------------------------------------- Ablation A1

// PreselectResult compares extraction with and without the line-3
// preselection (with it off, the full catalog is interpreted and the
// selection filtered afterwards) — the paper's "interpretation is
// expensive … early reduction is required".
type PreselectResult struct {
	Dataset            string
	Signals            int
	Examples           int
	WithSec            float64
	WithoutSec         float64
	InterpretedWith    int
	InterpretedWithout int
}

// AblationPreselect measures A1 on LIG (large catalog, small
// selection: the situation preselection exists for).
func AblationPreselect(ctx context.Context, scale float64, workers int) (*PreselectResult, error) {
	if scale <= 0 {
		scale = DefaultScale
	}
	d := gen.Build(gen.LIG)
	n := int(float64(gen.PaperExamples["LIG"]) * scale)
	if n < 2000 {
		n = 2000
	}
	tr := d.Generate(n)
	exec := engine.NewLocal(workers)
	sids := d.SelectSIDs(9)
	cfgWith := d.DefaultConfig()
	cfgWith.SIDs = sids

	res := &PreselectResult{Dataset: "LIG", Signals: len(sids), Examples: n}
	run := func(preselect bool) (float64, int, error) {
		fw, err := core.New(d.Catalog, cfgWith, exec)
		if err != nil {
			return 0, 0, err
		}
		if !preselect {
			fw.Interp = interp.Options{Preselect: false, FullCatalog: d.Catalog.Translations}
		}
		kb := tr.ToRelation(runtime.GOMAXPROCS(0) * 2)
		start := time.Now()
		_, exStats, _, err := fw.ExtractAndReduce(ctx, kb)
		if err != nil {
			return 0, 0, err
		}
		return time.Since(start).Seconds(), exStats.RowsOut, nil
	}
	var err error
	if res.WithSec, res.InterpretedWith, err = run(true); err != nil {
		return nil, err
	}
	if res.WithoutSec, res.InterpretedWithout, err = run(false); err != nil {
		return nil, err
	}
	return res, nil
}

// FormatPreselect renders A1.
func FormatPreselect(r *PreselectResult) string {
	var b strings.Builder
	b.WriteString("Ablation A1: preselection before interpretation (LIG, 9 of 180 signals)\n")
	fmt.Fprintf(&b, "%-24s %12s %14s\n", "", "seconds", "K_s rows out")
	fmt.Fprintf(&b, "%-24s %12.4f %14d\n", "with preselection", r.WithSec, r.InterpretedWith)
	fmt.Fprintf(&b, "%-24s %12.4f %14d\n", "interpret-all + filter", r.WithoutSec, r.InterpretedWithout)
	if r.WithSec > 0 {
		fmt.Fprintf(&b, "preselection speedup: %.2fx\n", r.WithoutSec/r.WithSec)
	}
	return b.String()
}

// ---------------------------------------------------------- Ablation A2

// ScalingPoint is one worker-count measurement.
type ScalingPoint struct {
	Workers int
	Seconds float64
	Speedup float64 // vs workers=1
}

// AblationScaling measures lines 3–11 wall time for 1..maxWorkers local
// workers on a SYN trace — the "distribution is essential" claim at
// laptop scale.
func AblationScaling(ctx context.Context, scale float64, maxWorkers int) ([]ScalingPoint, error) {
	if scale <= 0 {
		scale = DefaultScale
	}
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	d := gen.Build(gen.SYN)
	n := int(float64(gen.PaperExamples["SYN"]) * scale)
	if n < 2000 {
		n = 2000
	}
	tr := d.Generate(n)
	var out []ScalingPoint
	var base float64
	for w := 1; w <= maxWorkers; w *= 2 {
		exec := engine.NewLocal(w)
		fw, err := core.New(d.Catalog, d.DefaultConfig(), exec)
		if err != nil {
			return nil, err
		}
		kb := tr.ToRelation(maxWorkers * 2)
		start := time.Now()
		if _, _, _, err := fw.ExtractAndReduce(ctx, kb); err != nil {
			return nil, err
		}
		sec := time.Since(start).Seconds()
		if w == 1 {
			base = sec
		}
		p := ScalingPoint{Workers: w, Seconds: sec}
		if sec > 0 {
			p.Speedup = base / sec
		}
		out = append(out, p)
	}
	return out, nil
}

// FormatScaling renders A2.
func FormatScaling(points []ScalingPoint) string {
	var b strings.Builder
	b.WriteString("Ablation A2: worker scaling (SYN, lines 3-11)\n")
	fmt.Fprintf(&b, "%8s %12s %8s\n", "workers", "seconds", "speedup")
	for _, p := range points {
		fmt.Fprintf(&b, "%8d %12.4f %8.2f\n", p.Workers, p.Seconds, p.Speedup)
	}
	return b.String()
}

// ---------------------------------------------------------- Ablation A3

// ReductionRow reports the redundancy actually removed per data set.
type ReductionRow struct {
	Dataset     string
	Examples    int
	KsRows      int
	ReducedRows int
	Ratio       float64 // reduced/ks
	GatewayDups int     // corresponding channels folded by line 9
}

// AblationReduction measures A3: dedup-of-unchanged + gateway folding
// per data set.
func AblationReduction(ctx context.Context, scale float64, workers int) ([]ReductionRow, error) {
	if scale <= 0 {
		scale = DefaultScale
	}
	exec := engine.NewLocal(workers)
	var out []ReductionRow
	for _, spec := range specs() {
		d := gen.Build(spec)
		n := int(float64(gen.PaperExamples[spec.Name]) * scale)
		if n < 2000 {
			n = 2000
		}
		tr := d.Generate(n)
		fw, err := core.New(d.Catalog, d.DefaultConfig(), exec)
		if err != nil {
			return nil, err
		}
		reduced, exStats, redStats, err := fw.ExtractAndReduce(ctx, tr.ToRelation(runtime.GOMAXPROCS(0)*2))
		if err != nil {
			return nil, err
		}
		dups := 0
		for i := range reduced {
			dups += len(reduced[i].Gateway.Corresponding)
		}
		row := ReductionRow{
			Dataset:     spec.Name,
			Examples:    n,
			KsRows:      exStats.RowsOut,
			ReducedRows: redStats.RowsOut,
			GatewayDups: dups,
		}
		if row.KsRows > 0 {
			row.Ratio = float64(row.ReducedRows) / float64(row.KsRows)
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatReduction renders A3.
func FormatReduction(rows []ReductionRow) string {
	var b strings.Builder
	b.WriteString("Ablation A3: reduction ratios (change-constraint + gateway dedup)\n")
	fmt.Fprintf(&b, "%-8s %10s %10s %12s %8s %14s\n",
		"dataset", "examples", "K_s rows", "reduced rows", "ratio", "gateway folds")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %10d %10d %12d %8.3f %14d\n",
			r.Dataset, r.Examples, r.KsRows, r.ReducedRows, r.Ratio, r.GatewayDups)
	}
	return b.String()
}

// ---------------------------------------------------------- Ablation A4

// StorageRow quantifies Sec. 3.2's memory argument: "we store traces in
// raw format K_b which is more efficient than translating all K_b to
// K_s as, e.g., per CAN message 8 bytes could contain 8 signals which
// would result in a K_s of 8 times the size of K_b".
type StorageRow struct {
	Dataset string
	// RawBytes is the serialized size of the raw trace (IVTR).
	RawBytes int
	// EagerInstances is the interpreted-store row count of the
	// ingest-everything baseline; EagerBytes estimates its footprint.
	EagerInstances int
	EagerBytes     int
	// Blowup is EagerBytes / RawBytes.
	Blowup float64
}

// eagerInstanceBytes approximates one stored signal instance:
// timestamp + value + the two string headers interned to ids.
const eagerInstanceBytes = 8 + 16 + 8 + 8

// AblationStorage measures A4 across the data sets.
func AblationStorage(scale float64) ([]StorageRow, error) {
	if scale <= 0 {
		scale = DefaultScale
	}
	var out []StorageRow
	for _, spec := range specs() {
		d := gen.Build(spec)
		n := int(float64(gen.PaperExamples[spec.Name]) * scale)
		if n < 2000 {
			n = 2000
		}
		tr := d.Generate(n)
		var raw bytes.Buffer
		if err := trace.WriteBinary(&raw, tr); err != nil {
			return nil, err
		}
		tool, err := inhouse.New(d.Catalog)
		if err != nil {
			return nil, err
		}
		if err := tool.Ingest(tr); err != nil {
			return nil, err
		}
		row := StorageRow{
			Dataset:        spec.Name,
			RawBytes:       raw.Len(),
			EagerInstances: tool.StoredInstances(),
		}
		row.EagerBytes = row.EagerInstances * eagerInstanceBytes
		if row.RawBytes > 0 {
			row.Blowup = float64(row.EagerBytes) / float64(row.RawBytes)
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatStorage renders A4.
func FormatStorage(rows []StorageRow) string {
	var b strings.Builder
	b.WriteString("Ablation A4: raw K_b storage vs eager interpreted store (Sec. 3.2)\n")
	fmt.Fprintf(&b, "%-8s %12s %16s %14s %8s\n",
		"dataset", "raw bytes", "eager instances", "eager bytes", "blowup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %12d %16d %14d %7.2fx\n",
			r.Dataset, r.RawBytes, r.EagerInstances, r.EagerBytes, r.Blowup)
	}
	return b.String()
}
