package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"ivnt/internal/engine"
	"ivnt/internal/relation"
	"ivnt/internal/segstore"
	"ivnt/internal/serve"
	"ivnt/internal/telemetry"
)

// ServeOptions tune the query-service experiment.
type ServeOptions struct {
	// Segments in the store; default 32.
	Segments int
	// RowsPerSeg is each segment's row count; default 8000.
	RowsPerSeg int
	// Iters: requests per mode (each mode reports its best wall time);
	// default 5.
	Iters int
	// Dir is the store directory; empty = a temp dir (removed after).
	Dir string
}

func (o ServeOptions) withDefaults() ServeOptions {
	if o.Segments <= 0 {
		o.Segments = 32
	}
	if o.RowsPerSeg <= 0 {
		o.RowsPerSeg = 8000
	}
	if o.Iters <= 0 {
		o.Iters = 5
	}
	return o
}

// ServeResult is one service mode's measurement of the same selective
// query against the same daemon.
type ServeResult struct {
	Mode string

	Iters   int
	OutRows int
	// PlanHits/ResultHits are serve_*_cache_hits_total deltas across
	// the mode's timed requests.
	PlanHits, ResultHits int64

	// Speedup = cold wall / this mode's wall (1.0 on the cold row).
	Speedup float64
	WallSec float64
}

// Serve measures what the query service's two cache tiers buy over real
// HTTP: the same daemon, the same store, three request patterns. "cold"
// sends a fresh statement every request (parse + compile + execute),
// "plan-cached" repeats one statement with the result cache bypassed
// (cached plan, fresh execution), "result-cached" repeats it with
// caching on (the response replays without executing). All modes must
// return the same row count — same data, same predicate shape.
// The returned slice is [cold, plan-cached, result-cached].
func Serve(ctx context.Context, opts ServeOptions) ([]*ServeResult, error) {
	opts = opts.withDefaults()
	dir := opts.Dir
	if dir == "" {
		td, err := os.MkdirTemp("", "ivnt-servebench-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(td)
		dir = td
	}
	s := relation.NewSchema(
		relation.Column{Name: "ts", Kind: relation.KindInt},
		relation.Column{Name: "val", Kind: relation.KindFloat},
		relation.Column{Name: "sid", Kind: relation.KindString},
	)
	st, err := segstore.Open(dir, s, segstore.Options{Compress: true})
	if err != nil {
		return nil, err
	}
	for g := 0; g < opts.Segments; g++ {
		rows := make([]relation.Row, opts.RowsPerSeg)
		for i := range rows {
			ts := g*opts.RowsPerSeg + i
			rows[i] = relation.Row{
				relation.Int(int64(ts)),
				relation.Float(float64(ts%977) * 0.125),
				relation.Str(fmt.Sprintf("signal-%03d", ts%311)),
			}
		}
		if err := st.AppendSegment(rows); err != nil {
			return nil, err
		}
	}
	total := opts.Segments * opts.RowsPerSeg

	srv := &serve.Server{
		Exec: engine.NewLocal(0),
		Catalog: serve.NewCatalog(&serve.Config{Tenants: map[string]*serve.TenantConfig{
			"bench": {Relations: map[string]string{"trace": dir}},
		}}, segstore.Options{}),
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	url := "http://" + ln.Addr().String() + "/query"

	// The query: the trailing segment's worth of the trace, two of the
	// three columns — the scan bench's "recent window" lookup, served.
	stmt := func(lo int) string {
		return fmt.Sprintf("SELECT ts, val FROM trace WHERE ts >= %d ORDER BY ts", lo)
	}
	post := func(sql string, nocache bool) (int, error) {
		body, err := json.Marshal(map[string]string{"tenant": "bench", "sql": sql})
		if err != nil {
			return 0, err
		}
		u := url
		if nocache {
			u += "?nocache=1"
		}
		resp, err := http.Post(u, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var out struct {
			RowCount int    `json:"row_count"`
			Cache    string `json:"cache"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("serve bench: HTTP %d", resp.StatusCode)
		}
		return out.RowCount, nil
	}

	reg := telemetry.Default()
	measure := func(mode string, sqlFor func(it int) string, nocache bool) (*ServeResult, error) {
		res := &ServeResult{Mode: mode, Iters: opts.Iters}
		planHits := reg.CounterValue("serve_plan_cache_hits_total")
		resultHits := reg.CounterValue("serve_result_cache_hits_total")
		best := time.Duration(0)
		for it := 0; it < opts.Iters; it++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			start := time.Now()
			n, err := post(sqlFor(it), nocache)
			wall := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("serve bench: %s mode: %w", mode, err)
			}
			res.OutRows = n
			if best == 0 || wall < best {
				best = wall
			}
		}
		res.PlanHits = reg.CounterValue("serve_plan_cache_hits_total") - planHits
		res.ResultHits = reg.CounterValue("serve_result_cache_hits_total") - resultHits
		res.WallSec = best.Seconds()
		return res, nil
	}

	// Cold: a fresh statement per request — a vacuous extra conjunct
	// (val is never negative) varies the statement text, so every
	// parse, plan and result key is new while the result stays fixed.
	cold, err := measure("cold", func(it int) string {
		return fmt.Sprintf("SELECT ts, val FROM trace WHERE ts >= %d && val >= -%d ORDER BY ts",
			total-opts.RowsPerSeg, it+1)
	}, true)
	if err != nil {
		return nil, err
	}
	repeat := stmt(total - opts.RowsPerSeg)
	if _, err := post(repeat, true); err != nil { // warm the plan cache
		return nil, err
	}
	planCached, err := measure("plan-cached", func(int) string { return repeat }, true)
	if err != nil {
		return nil, err
	}
	if _, err := post(repeat, false); err != nil { // warm the result cache
		return nil, err
	}
	resultCached, err := measure("result-cached", func(int) string { return repeat }, false)
	if err != nil {
		return nil, err
	}

	for _, r := range []*ServeResult{planCached, resultCached} {
		if r.OutRows != cold.OutRows {
			return nil, fmt.Errorf("serve bench: modes disagree: cold %d rows, %s %d", cold.OutRows, r.Mode, r.OutRows)
		}
	}
	cold.Speedup = 1
	for _, r := range []*ServeResult{planCached, resultCached} {
		if r.WallSec > 0 {
			r.Speedup = cold.WallSec / r.WallSec
		}
	}
	return []*ServeResult{cold, planCached, resultCached}, nil
}

// FormatServe renders the mode comparison as an aligned table.
func FormatServe(results []*ServeResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %6s %9s %10s %12s %9s %8s\n",
		"mode", "iters", "out_rows", "plan_hits", "result_hits", "wall_ms", "speedup")
	for _, r := range results {
		fmt.Fprintf(&b, "%-14s %6d %9d %10d %12d %9.2f %7.2fx\n",
			r.Mode, r.Iters, r.OutRows, r.PlanHits, r.ResultHits, r.WallSec*1e3, r.Speedup)
	}
	return b.String()
}
