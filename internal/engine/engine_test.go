package engine

import (
	"context"
	"fmt"
	"testing"
	"testing/quick"

	"ivnt/internal/relation"
)

var ctx = context.Background()

func traceSchema() relation.Schema {
	return relation.NewSchema(
		relation.Column{Name: "t", Kind: relation.KindFloat},
		relation.Column{Name: "bid", Kind: relation.KindString},
		relation.Column{Name: "mid", Kind: relation.KindInt},
		relation.Column{Name: "l", Kind: relation.KindBytes},
	)
}

// makeTrace builds n rows alternating two message types on channel FC,
// with payload [i%7, i%3].
func makeTrace(n, parts int) *relation.Relation {
	rows := make([]relation.Row, n)
	for i := range rows {
		rows[i] = relation.Row{
			relation.Float(float64(i) * 0.1),
			relation.Str("FC"),
			relation.Int(int64(3 + i%2)),
			relation.Bytes([]byte{byte(i % 7), byte(i % 3)}),
		}
	}
	return relation.FromRows(traceSchema(), rows).Repartition(parts)
}

func rulesTable() *relation.Relation {
	s := relation.NewSchema(
		relation.Column{Name: "sid", Kind: relation.KindString},
		relation.Column{Name: "rbid", Kind: relation.KindString},
		relation.Column{Name: "rmid", Kind: relation.KindInt},
		relation.Column{Name: "rule", Kind: relation.KindString},
	)
	return relation.FromRows(s, []relation.Row{
		{relation.Str("wpos"), relation.Str("FC"), relation.Int(3), relation.Str("0.5 * byteat(l, 0)")},
		{relation.Str("wvel"), relation.Str("FC"), relation.Int(3), relation.Str("byteat(l, 1)")},
		{relation.Str("heat"), relation.Str("FC"), relation.Int(4), relation.Str("byteat(l, 0) + 2")},
	})
}

func TestFilterStage(t *testing.T) {
	for _, workers := range []int{1, 4} {
		exec := NewLocal(workers)
		ds := NewDataset(exec, makeTrace(100, 5)).Filter("mid == 3")
		rel, err := ds.Collect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if rel.NumRows() != 50 {
			t.Fatalf("workers=%d: filtered rows = %d, want 50", workers, rel.NumRows())
		}
		midIdx := rel.Schema.MustIndex("mid")
		for _, r := range rel.Rows() {
			if r[midIdx].AsInt() != 3 {
				t.Fatalf("row passed filter wrongly: %v", r)
			}
		}
	}
}

func TestProjectAndWithColumn(t *testing.T) {
	exec := NewLocal(2)
	ds := NewDataset(exec, makeTrace(10, 2)).
		WithColumn("b0", relation.KindInt, "byteat(l, 0)").
		Select("t", "b0")
	rel, err := ds.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Schema.Len() != 2 || rel.Schema.Cols[1].Name != "b0" {
		t.Fatalf("schema = %s", rel.Schema)
	}
	rows := rel.Rows()
	if rows[3][1].AsInt() != 3 {
		t.Fatalf("b0[3] = %v", rows[3][1])
	}
}

func TestBroadcastJoinInterpretation(t *testing.T) {
	// The core of Sec. 3.2: join raw messages with translation tuples on
	// (mid, bid), then evaluate the per-row rule to interpret values.
	exec := NewLocal(4)
	ds := NewDataset(exec, makeTrace(20, 3)).
		JoinBroadcast(rulesTable(), []string{"bid", "mid"}, []string{"rbid", "rmid"}).
		WithRuleColumn("v", relation.KindFloat, "rule")
	rel, err := ds.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// mid=3 rows (10 of them) match 2 rules each; mid=4 rows match 1.
	if rel.NumRows() != 10*2+10*1 {
		t.Fatalf("joined rows = %d, want 30", rel.NumRows())
	}
	sidIdx := rel.Schema.MustIndex("sid")
	vIdx := rel.Schema.MustIndex("v")
	lIdx := rel.Schema.MustIndex("l")
	for _, r := range rel.Rows() {
		b0 := float64(r[lIdx].B[0])
		b1 := float64(r[lIdx].B[1])
		var want float64
		switch r[sidIdx].AsString() {
		case "wpos":
			want = 0.5 * b0
		case "wvel":
			want = b1
		case "heat":
			want = b0 + 2
		}
		if r[vIdx].AsFloat() != want {
			t.Fatalf("interpreted %s = %v, want %v (row %v)", r[sidIdx], r[vIdx], want, r)
		}
	}
}

func TestDedupConsecutive(t *testing.T) {
	s := relation.NewSchema(
		relation.Column{Name: "t", Kind: relation.KindFloat},
		relation.Column{Name: "v", Kind: relation.KindInt},
	)
	rows := []relation.Row{
		{relation.Float(0), relation.Int(1)},
		{relation.Float(1), relation.Int(1)},
		{relation.Float(2), relation.Int(1)},
		{relation.Float(3), relation.Int(2)},
		{relation.Float(4), relation.Int(2)},
		{relation.Float(5), relation.Int(1)},
	}
	rel := relation.FromRows(s, rows)
	out, err := NewDataset(NewLocal(1), rel).DedupRuns("v").Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := out.Rows()
	if len(got) != 3 {
		t.Fatalf("dedup rows = %d, want 3: %v", len(got), got)
	}
	wantT := []float64{0, 3, 5}
	for i, r := range got {
		if r[0].AsFloat() != wantT[i] {
			t.Fatalf("kept row %d at t=%v, want %v", i, r[0], wantT[i])
		}
	}
}

func TestWindowFilterCycleViolation(t *testing.T) {
	s := relation.NewSchema(relation.Column{Name: "t", Kind: relation.KindFloat})
	rows := []relation.Row{
		{relation.Float(0.0)}, {relation.Float(0.1)}, {relation.Float(0.5)}, {relation.Float(0.6)},
	}
	rel := relation.FromRows(s, rows)
	out, err := NewDataset(NewLocal(1), rel).Filter("gap(t) > 0.15").Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 || out.Rows()[0][0].AsFloat() != 0.5 {
		t.Fatalf("violations = %v", out.Rows())
	}
}

func TestSortWithinAndGlobal(t *testing.T) {
	s := relation.NewSchema(relation.Column{Name: "t", Kind: relation.KindFloat})
	rel := &relation.Relation{Schema: s, Partitions: [][]relation.Row{
		{{relation.Float(3)}, {relation.Float(1)}},
		{{relation.Float(2)}, {relation.Float(0)}},
	}}
	out, err := NewDataset(NewLocal(2), rel).SortWithinPartitions("t").Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out.Partitions[0][0][0].AsFloat() != 1 || out.Partitions[1][0][0].AsFloat() != 0 {
		t.Fatalf("per-partition sort wrong: %v", out.Partitions)
	}
	ds, err := NewDataset(NewLocal(2), rel).SortGlobal(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}
	g, err := ds.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range g.Rows() {
		if r[0].AsFloat() != float64(i) {
			t.Fatalf("global sort wrong at %d: %v", i, r)
		}
	}
}

func TestSplitBy(t *testing.T) {
	exec := NewLocal(2)
	ds := NewDataset(exec, makeTrace(20, 3)).
		JoinBroadcast(rulesTable(), []string{"bid", "mid"}, []string{"rbid", "rmid"})
	groups, err := ds.SplitBy(ctx, "sid")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(groups))
	}
	total := 0
	for _, g := range groups {
		total += g.Rel.NumRows()
		sidIdx := g.Rel.Schema.MustIndex("sid")
		for _, r := range g.Rel.Rows() {
			if !r[sidIdx].Equal(g.Key) {
				t.Fatalf("group %v contains row of %v", g.Key, r[sidIdx])
			}
		}
	}
	if total != 30 {
		t.Fatalf("split lost rows: %d", total)
	}
}

func TestUnionAndCount(t *testing.T) {
	exec := NewLocal(1)
	a := NewDataset(exec, makeTrace(10, 2)).Filter("mid == 3")
	b := NewDataset(exec, makeTrace(10, 2)).Filter("mid == 4")
	u, err := a.Union(ctx, b)
	if err != nil {
		t.Fatal(err)
	}
	n, err := u.Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("union count = %d, want 10", n)
	}
}

func TestBuilderErrorSticks(t *testing.T) {
	exec := NewLocal(1)
	ds := NewDataset(exec, makeTrace(5, 1)).Filter("nosuchcol > 0").Select("t")
	if ds.Err() == nil {
		t.Fatal("expected recorded error")
	}
	if _, err := ds.Collect(ctx); err == nil {
		t.Fatal("Collect must surface builder error")
	}
	if _, err := ds.Schema(); err == nil {
		t.Fatal("Schema must surface builder error")
	}
}

func TestSchemaValidationErrors(t *testing.T) {
	exec := NewLocal(1)
	base := NewDataset(exec, makeTrace(5, 1))
	cases := []*Dataset{
		base.Select("missing"),
		base.WithColumn("t", relation.KindFloat, "1"), // duplicate column
		base.WithColumn("x", relation.KindFloat, "bad ("),
		base.JoinBroadcast(rulesTable(), []string{"bid"}, []string{"rbid", "rmid"}),
		base.JoinBroadcast(rulesTable(), []string{"nope"}, []string{"rbid"}),
		base.DedupRuns("missing"),
	}
	for i, ds := range cases {
		if ds.Err() == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestLocalMatchesSingleWorkerProperty(t *testing.T) {
	// Property: results are independent of worker count and partition
	// count (determinism requirement of the paper).
	f := func(nRows uint8, parts uint8, workers uint8) bool {
		n := int(nRows)%200 + 1
		p := int(parts)%8 + 1
		w := int(workers)%8 + 1
		rel := makeTrace(n, p)
		ops := func(d *Dataset) *Dataset {
			return d.Filter("mid == 3").WithColumn("b0", relation.KindInt, "byteat(l, 0)")
		}
		a, err1 := ops(NewDataset(NewLocal(1), makeTrace(n, 1))).Collect(ctx)
		b, err2 := ops(NewDataset(NewLocal(w), rel)).Collect(ctx)
		if err1 != nil || err2 != nil {
			return false
		}
		ar, br := a.Rows(), b.Rows()
		if len(ar) != len(br) {
			return false
		}
		for i := range ar {
			if !ar[i].Equal(br[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAggregate(t *testing.T) {
	s := relation.NewSchema(
		relation.Column{Name: "sid", Kind: relation.KindString},
		relation.Column{Name: "v", Kind: relation.KindFloat},
	)
	rows := []relation.Row{
		{relation.Str("a"), relation.Float(1)},
		{relation.Str("a"), relation.Float(3)},
		{relation.Str("b"), relation.Float(10)},
		{relation.Str("a"), relation.Null()},
	}
	rel := relation.FromRows(s, rows)
	out, err := Aggregate(rel, []string{"sid"}, []AggSpec{
		{Fn: AggCount, As: "n"},
		{Fn: AggSum, Col: "v", As: "sum"},
		{Fn: AggMean, Col: "v", As: "mean"},
		{Fn: AggMin, Col: "v", As: "min"},
		{Fn: AggMax, Col: "v", As: "max"},
		{Fn: AggFirst, Col: "v", As: "first"},
		{Fn: AggLast, Col: "v", As: "last"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := out.Rows()
	if len(got) != 2 {
		t.Fatalf("groups = %d", len(got))
	}
	// Ordered by key: a then b.
	a := got[0]
	if a[0].AsString() != "a" || a[1].AsInt() != 3 || a[2].AsFloat() != 4 ||
		a[3].AsFloat() != 2 || a[4].AsFloat() != 1 || a[5].AsFloat() != 3 ||
		a[6].AsFloat() != 1 || a[7].AsFloat() != 3 {
		t.Fatalf("group a = %v", a)
	}
	b := got[1]
	if b[0].AsString() != "b" || b[1].AsInt() != 1 || b[2].AsFloat() != 10 {
		t.Fatalf("group b = %v", b)
	}
}

func TestAggregateErrors(t *testing.T) {
	rel := makeTrace(5, 1)
	if _, err := Aggregate(rel, []string{"nope"}, nil); err == nil {
		t.Fatal("missing group column must fail")
	}
	if _, err := Aggregate(rel, []string{"bid"}, []AggSpec{{Fn: AggSum, Col: "nope", As: "x"}}); err == nil {
		t.Fatal("missing agg column must fail")
	}
}

func TestEvalRuleBadRuleFails(t *testing.T) {
	s := relation.NewSchema(
		relation.Column{Name: "v", Kind: relation.KindInt},
		relation.Column{Name: "rule", Kind: relation.KindString},
	)
	rel := relation.FromRows(s, []relation.Row{{relation.Int(1), relation.Str("v +")}})
	_, err := NewDataset(NewLocal(1), rel).WithRuleColumn("out", relation.KindFloat, "rule").Collect(ctx)
	if err == nil {
		t.Fatal("malformed per-row rule must fail the stage")
	}
}

func TestOpKindStrings(t *testing.T) {
	for k := OpFilter; k <= OpSortWithin; k++ {
		if k.String() == "" || k.String() == fmt.Sprintf("op(%d)", uint8(k)) {
			t.Errorf("missing name for op kind %d", uint8(k))
		}
	}
}

func TestStatsAccumulation(t *testing.T) {
	exec := NewLocal(2)
	ds := NewDataset(exec, makeTrace(100, 4)).Filter("mid == 3")
	out, err := ds.materialize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	st := out.Stats()
	if st.RowsIn != 100 || st.RowsOut != 50 || st.Partitions != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEmptyRelationThroughStage(t *testing.T) {
	exec := NewLocal(2)
	empty := relation.FromRows(traceSchema(), nil)
	out, st, err := exec.RunStage(ctx, empty, []OpDesc{Filter("mid == 3")})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 0 || st.RowsIn != 0 {
		t.Fatalf("rows = %d, stats = %+v", out.NumRows(), st)
	}
}

func TestBroadcastJoinEmptyTable(t *testing.T) {
	empty := relation.New(relation.NewSchema(
		relation.Column{Name: "rbid", Kind: relation.KindString},
		relation.Column{Name: "rmid", Kind: relation.KindInt},
	))
	out, err := NewDataset(NewLocal(1), makeTrace(10, 2)).
		JoinBroadcast(empty, []string{"bid", "mid"}, []string{"rbid", "rmid"}).
		Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 0 {
		t.Fatalf("inner join with empty table must drop everything: %d rows", out.NumRows())
	}
}

func TestEvalRuleEmptyRuleYieldsNull(t *testing.T) {
	s := relation.NewSchema(
		relation.Column{Name: "v", Kind: relation.KindInt},
		relation.Column{Name: "rule", Kind: relation.KindString},
	)
	rel := relation.FromRows(s, []relation.Row{{relation.Int(1), relation.Str("")}})
	out, err := NewDataset(NewLocal(1), rel).WithRuleColumn("out", relation.KindNull, "rule").Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Rows()[0][2].IsNull() {
		t.Fatalf("empty rule must yield null, got %v", out.Rows()[0][2])
	}
}

func TestDedupConsecutiveRespectsPartitionBoundaries(t *testing.T) {
	// Run dedup is partition-local: a run spanning a partition boundary
	// keeps one row per partition. This documents the semantics relied
	// on by reduce (which always dedups single-partition sequences).
	s := relation.NewSchema(relation.Column{Name: "v", Kind: relation.KindInt})
	rel := &relation.Relation{Schema: s, Partitions: [][]relation.Row{
		{{relation.Int(1)}, {relation.Int(1)}},
		{{relation.Int(1)}, {relation.Int(2)}},
	}}
	out, err := NewDataset(NewLocal(2), rel).DedupRuns("v").Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3 (1 per partition run + change)", out.NumRows())
	}
}

func TestShuffleThenCount(t *testing.T) {
	ds, err := NewDataset(NewLocal(2), makeTrace(60, 3)).Shuffle(ctx, 4, "mid")
	if err != nil {
		t.Fatal(err)
	}
	n, err := ds.Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 60 {
		t.Fatalf("count = %d", n)
	}
	if _, err := NewDataset(NewLocal(2), makeTrace(5, 1)).Shuffle(ctx, 2, "missing"); err == nil {
		t.Fatal("shuffle on missing column must fail")
	}
}

func TestRepartitionDataset(t *testing.T) {
	ds, err := NewDataset(NewLocal(2), makeTrace(40, 2)).Filter("mid == 3").Repartition(ctx, 8)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := ds.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rel.NumPartitions() != 8 || rel.NumRows() != 20 {
		t.Fatalf("partitions = %d, rows = %d", rel.NumPartitions(), rel.NumRows())
	}
}

func TestColumnFloats(t *testing.T) {
	s := relation.NewSchema(relation.Column{Name: "v", Kind: relation.KindFloat})
	rel := relation.FromRows(s, []relation.Row{
		{relation.Float(1)}, {relation.Null()}, {relation.Float(3)},
	})
	vals, err := ColumnFloats(rel, "v")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != 1 || vals[1] != 3 {
		t.Fatalf("vals = %v", vals)
	}
	if _, err := ColumnFloats(rel, "missing"); err == nil {
		t.Fatal("missing column must fail")
	}
}

func TestAggFuncStrings(t *testing.T) {
	for f := AggCount; f <= AggLast; f++ {
		if f.String() == "" {
			t.Errorf("missing name for agg func %d", uint8(f))
		}
	}
}

func TestAggregateDistributedMatchesLocal(t *testing.T) {
	s := relation.NewSchema(
		relation.Column{Name: "sid", Kind: relation.KindString},
		relation.Column{Name: "v", Kind: relation.KindFloat},
	)
	rows := make([]relation.Row, 300)
	for i := range rows {
		v := relation.Float(float64(i % 17))
		if i%23 == 0 {
			v = relation.Null()
		}
		rows[i] = relation.Row{relation.Str([]string{"a", "b", "c"}[i%3]), v}
	}
	rel := relation.FromRows(s, rows).Repartition(7)
	aggs := []AggSpec{
		{Fn: AggCount, As: "n"},
		{Fn: AggSum, Col: "v", As: "sum"},
		{Fn: AggMean, Col: "v", As: "mean"},
		{Fn: AggMin, Col: "v", As: "min"},
		{Fn: AggMax, Col: "v", As: "max"},
	}
	want, err := Aggregate(rel, []string{"sid"}, aggs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AggregateDistributed(ctx, NewLocal(4), rel, []string{"sid"}, aggs)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("groups: %d vs %d", got.NumRows(), want.NumRows())
	}
	gw, ww := got.Rows(), want.Rows()
	for i := range gw {
		for j := range gw[i] {
			if !gw[i][j].Equal(ww[i][j]) {
				t.Fatalf("group %d col %d: distributed %v vs local %v (%s)",
					i, j, gw[i][j], ww[i][j], got.Schema.Cols[j].Name)
			}
		}
	}
}

func TestAggregateDistributedRejectsOrderDependent(t *testing.T) {
	rel := makeTrace(10, 2)
	_, err := AggregateDistributed(ctx, NewLocal(1), rel, []string{"bid"},
		[]AggSpec{{Fn: AggFirst, Col: "t", As: "f"}})
	if err == nil {
		t.Fatal("AggFirst must be rejected in distributed aggregation")
	}
	if _, err := AggregateDistributed(ctx, NewLocal(1), rel, nil,
		[]AggSpec{{Fn: AggCount, As: "n"}}); err == nil {
		t.Fatal("empty group-by must be rejected")
	}
}
