package engine

import (
	"sync"

	"ivnt/internal/relation"
)

// pipelineCacheCap bounds the process-wide compiled-pipeline cache. A
// stage entry can be heavy (it holds the built broadcast hash table),
// so the cache keeps only the most recently used stages; 32 covers
// every concurrent workload in the repo with room to spare.
const pipelineCacheCap = 32

// pipelineCache is an LRU of compiled stage pipelines keyed by stage
// fingerprint. Pipelines are immutable and safe for concurrent Apply,
// so one compilation — including the broadcast-join hash map build —
// serves every partition, every repeated RunStage of the same plan, and
// (on cluster executors) every driver connection.
type pipelineCache struct {
	mu      sync.Mutex
	entries map[uint64]*pipelineEntry
	tick    uint64
}

type pipelineEntry struct {
	pipe     *StagePipeline
	lastUsed uint64
}

var sharedPipelines = &pipelineCache{entries: make(map[uint64]*pipelineEntry)}

func (c *pipelineCache) get(fp uint64) *StagePipeline {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[fp]
	if !ok {
		return nil
	}
	c.tick++
	e.lastUsed = c.tick
	return e.pipe
}

func (c *pipelineCache) put(fp uint64, p *StagePipeline) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	c.entries[fp] = &pipelineEntry{pipe: p, lastUsed: c.tick}
	for len(c.entries) > pipelineCacheCap {
		var oldest uint64
		var oldestUse uint64 = ^uint64(0)
		for k, e := range c.entries {
			if e.lastUsed < oldestUse {
				oldest, oldestUse = k, e.lastUsed
			}
		}
		delete(c.entries, oldest)
	}
}

// CompileStage returns a compiled pipeline for (in, ops), reusing a
// cached compilation when an identical stage (by content fingerprint)
// was compiled before. It returns the fingerprint alongside, which
// callers use as the stage's wire identity.
func CompileStage(in relation.Schema, ops []OpDesc) (*StagePipeline, uint64, error) {
	fp := StageFingerprint(in, ops)
	if p := sharedPipelines.get(fp); p != nil {
		return p, fp, nil
	}
	p, err := NewStagePipeline(in, ops)
	if err != nil {
		return nil, fp, err
	}
	sharedPipelines.put(fp, p)
	return p, fp, nil
}

// CompileStageAs is CompileStage for callers that already know the
// stage's fingerprint (cluster executors receive it from the driver and
// must key their cache by the driver's value, not a recomputed one).
func CompileStageAs(fp uint64, in relation.Schema, ops []OpDesc) (*StagePipeline, error) {
	if p := sharedPipelines.get(fp); p != nil {
		return p, nil
	}
	p, err := NewStagePipeline(in, ops)
	if err != nil {
		return nil, err
	}
	sharedPipelines.put(fp, p)
	return p, nil
}
