package engine

import (
	"context"
	"fmt"

	"ivnt/internal/relation"
)

// Dataset is the lazy, fluent plan-building API over the engine, the
// analogue of a Spark DataFrame. Narrow operators accumulate into a
// pending stage; structural operations (shuffle, global sort, union,
// split) force the pending stage through the bound executor.
//
// Builder methods record the first error and make all later calls
// no-ops, so call sites read as straight-line pipelines with a single
// error check at the terminal operation.
type Dataset struct {
	exec  Executor
	rel   *relation.Relation
	ops   []OpDesc
	stats Stats
	err   error
}

// NewDataset wraps a materialized relation with an executor.
func NewDataset(exec Executor, rel *relation.Relation) *Dataset {
	return &Dataset{exec: exec, rel: rel}
}

// Err returns the first error recorded by builder methods.
func (d *Dataset) Err() error { return d.err }

// Stats returns the accumulated execution statistics of all stages this
// dataset has run so far.
func (d *Dataset) Stats() Stats { return d.stats }

// Schema returns the schema the dataset will produce, accounting for
// pending operators.
func (d *Dataset) Schema() (relation.Schema, error) {
	if d.err != nil {
		return relation.Schema{}, d.err
	}
	return OutputSchema(d.rel.Schema, d.ops)
}

func (d *Dataset) push(op OpDesc) *Dataset {
	if d.err != nil {
		return d
	}
	// Validate eagerly so mistakes surface at the call site.
	if _, err := OutputSchema(d.rel.Schema, append(append([]OpDesc{}, d.ops...), op)); err != nil {
		return &Dataset{exec: d.exec, rel: d.rel, ops: d.ops, stats: d.stats, err: err}
	}
	ops := make([]OpDesc, 0, len(d.ops)+1)
	ops = append(ops, d.ops...)
	ops = append(ops, op)
	return &Dataset{exec: d.exec, rel: d.rel, ops: ops, stats: d.stats}
}

// Filter appends σ(predicate).
func (d *Dataset) Filter(predicate string) *Dataset { return d.push(Filter(predicate)) }

// Select appends π(cols).
func (d *Dataset) Select(cols ...string) *Dataset { return d.push(Project(cols...)) }

// WithColumn appends a computed column.
func (d *Dataset) WithColumn(name string, kind relation.Kind, exprSrc string) *Dataset {
	return d.push(AddColumn(name, kind, exprSrc))
}

// WithRuleColumn appends a column evaluated from per-row rule text.
func (d *Dataset) WithRuleColumn(name string, kind relation.Kind, ruleCol string) *Dataset {
	return d.push(EvalRule(name, kind, ruleCol))
}

// JoinBroadcast appends an inner equi-join with a small table.
func (d *Dataset) JoinBroadcast(small *relation.Relation, leftKeys, rightKeys []string) *Dataset {
	return d.push(BroadcastJoin(small, leftKeys, rightKeys))
}

// DedupRuns appends run-length deduplication on the value columns.
func (d *Dataset) DedupRuns(valueCols ...string) *Dataset {
	return d.push(DedupConsecutive(valueCols...))
}

// SortWithinPartitions appends a per-partition sort.
func (d *Dataset) SortWithinPartitions(cols ...string) *Dataset {
	return d.push(SortWithin(cols...))
}

// Collect runs the pending stage and returns the materialized relation.
func (d *Dataset) Collect(ctx context.Context) (*relation.Relation, error) {
	m, err := d.materialize(ctx)
	if err != nil {
		return nil, err
	}
	return m.rel, nil
}

// Count runs the pending stage and returns the row count.
func (d *Dataset) Count(ctx context.Context) (int, error) {
	rel, err := d.Collect(ctx)
	if err != nil {
		return 0, err
	}
	return rel.NumRows(), nil
}

// materialize flushes pending narrow ops through the executor.
func (d *Dataset) materialize(ctx context.Context) (*Dataset, error) {
	if d.err != nil {
		return nil, d.err
	}
	if len(d.ops) == 0 {
		return d, nil
	}
	out, st, err := d.exec.RunStage(ctx, d.rel, d.ops)
	if err != nil {
		return nil, err
	}
	nd := &Dataset{exec: d.exec, rel: out, stats: d.stats}
	nd.stats.Add(st)
	return nd, nil
}

// Repartition materializes and redistributes into n balanced partitions.
func (d *Dataset) Repartition(ctx context.Context, n int) (*Dataset, error) {
	m, err := d.materialize(ctx)
	if err != nil {
		return nil, err
	}
	return &Dataset{exec: d.exec, rel: m.rel.Repartition(n), stats: m.stats}, nil
}

// Shuffle materializes and hash-partitions by key columns so equal keys
// co-locate — the exchange before per-signal processing.
func (d *Dataset) Shuffle(ctx context.Context, n int, keys ...string) (*Dataset, error) {
	m, err := d.materialize(ctx)
	if err != nil {
		return nil, err
	}
	rel, err := m.rel.PartitionByKey(n, keys...)
	if err != nil {
		return nil, err
	}
	return &Dataset{exec: d.exec, rel: rel, stats: m.stats}, nil
}

// SortGlobal materializes and totally orders the dataset by cols,
// restoring determinism after shuffles. The sort is governed: it
// degrades to an external merge sort when the memory budget denies the
// in-memory working set.
func (d *Dataset) SortGlobal(ctx context.Context, cols ...string) (*Dataset, error) {
	m, err := d.materialize(ctx)
	if err != nil {
		return nil, err
	}
	rel, err := SortRelation(m.rel, cols...)
	if err != nil {
		return nil, err
	}
	return &Dataset{exec: d.exec, rel: rel, stats: m.stats}, nil
}

// Union materializes both sides and concatenates them (schemas must
// match).
func (d *Dataset) Union(ctx context.Context, o *Dataset) (*Dataset, error) {
	m, err := d.materialize(ctx)
	if err != nil {
		return nil, err
	}
	om, err := o.materialize(ctx)
	if err != nil {
		return nil, err
	}
	rel, err := m.rel.Concat(om.rel)
	if err != nil {
		return nil, err
	}
	st := m.stats
	st.Add(om.stats)
	return &Dataset{exec: d.exec, rel: rel, stats: st}, nil
}

// KeyedRelation is one group produced by SplitBy: all rows sharing a
// key, time-ordered if the input was.
type KeyedRelation struct {
	Key relation.Value
	Rel *relation.Relation
}

// SplitBy materializes and splits the dataset into one relation per
// distinct value of col, in first-appearance order — Algorithm 1 line 8
// (signal splitting over Σ*).
func (d *Dataset) SplitBy(ctx context.Context, col string) ([]KeyedRelation, error) {
	m, err := d.materialize(ctx)
	if err != nil {
		return nil, err
	}
	idx := m.rel.Schema.Index(col)
	if idx < 0 {
		return nil, fmt.Errorf("engine: SplitBy: no column %q in %s", col, m.rel.Schema)
	}
	order := []string{}
	groups := map[string][]relation.Row{}
	keyVals := map[string]relation.Value{}
	for _, p := range m.rel.Partitions {
		for _, r := range p {
			k := r[idx].AsString()
			if _, ok := groups[k]; !ok {
				order = append(order, k)
				keyVals[k] = r[idx]
			}
			groups[k] = append(groups[k], r)
		}
	}
	out := make([]KeyedRelation, 0, len(order))
	for _, k := range order {
		out = append(out, KeyedRelation{
			Key: keyVals[k],
			Rel: relation.FromRows(m.rel.Schema, groups[k]),
		})
	}
	return out, nil
}
