package engine

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"ivnt/internal/relation"
)

// ruleBenchSchema is the shape of a joined interpretation stream: a
// payload column and a per-row rule column.
func ruleBenchSchema() relation.Schema {
	return relation.NewSchema(
		relation.Column{Name: "x", Kind: relation.KindInt},
		relation.Column{Name: "rule", Kind: relation.KindString},
	)
}

// BenchmarkRuleCacheParallel hammers the compiled-rule cache from all
// procs with a warm working set — the exact access pattern of
// OpEvalRule worker goroutines after the first few rows of a stage.
// Before the cache was sharded with read-mostly locking, every lookup
// took one global mutex and the workers serialized here.
func BenchmarkRuleCacheParallel(b *testing.B) {
	c := newRuleCache(ruleBenchSchema())
	srcs := make([]string, 64)
	for i := range srcs {
		srcs[i] = fmt.Sprintf("x * %d + %d", i+1, i)
		if _, err := c.get(srcs[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var n atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			src := srcs[int(n.Add(1))%len(srcs)]
			if _, err := c.get(src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEvalRuleParallel runs a whole OpEvalRule stage on the local
// executor with GOMAXPROCS workers — the end-to-end view of rule-cache
// contention (u₂ interpretation: every row evaluates the rule text it
// carries).
func BenchmarkEvalRuleParallel(b *testing.B) {
	const rowsPerPart, parts = 2000, 16
	rows := make([]relation.Row, rowsPerPart*parts)
	for i := range rows {
		rows[i] = relation.Row{
			relation.Int(int64(i)),
			relation.Str(fmt.Sprintf("x * %d + 1", i%32+1)),
		}
	}
	rel := relation.FromRows(ruleBenchSchema(), rows).Repartition(parts)
	ops := []OpDesc{EvalRule("v", relation.KindInt, "rule")}
	exec := NewLocal(0)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := exec.RunStage(ctx, rel, ops); err != nil {
			b.Fatal(err)
		}
	}
}
