package engine

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"ivnt/internal/relation"
)

// vecTestRows builds a partition with value variety (nulls, runs,
// duplicate join keys, rule text) sized to cross batch boundaries.
func vecTestRows(n int) []relation.Row {
	rng := rand.New(rand.NewSource(7))
	rows := make([]relation.Row, n)
	for i := range rows {
		var v relation.Value
		switch rng.Intn(4) {
		case 0:
			v = relation.Null()
		default:
			v = relation.Float(rng.NormFloat64() * 10)
		}
		rows[i] = relation.Row{
			relation.Float(float64(i) * 0.01),
			relation.Str("FC"),
			relation.Int(int64(i % 5)),
			relation.Bytes([]byte{byte(i % 7), byte(i % 3), byte(rng.Intn(256))}),
			v,
		}
	}
	return rows
}

func vecTestSchema() relation.Schema {
	return relation.NewSchema(
		relation.Column{Name: "t", Kind: relation.KindFloat},
		relation.Column{Name: "bid", Kind: relation.KindString},
		relation.Column{Name: "mid", Kind: relation.KindInt},
		relation.Column{Name: "l", Kind: relation.KindBytes},
		relation.Column{Name: "v", Kind: relation.KindFloat},
	)
}

func vecJoinTable() *relation.Relation {
	s := relation.NewSchema(
		relation.Column{Name: "rmid", Kind: relation.KindInt},
		relation.Column{Name: "sid", Kind: relation.KindString},
		relation.Column{Name: "rule", Kind: relation.KindString},
	)
	// mid 3 maps to two signals: a duplicate-key (uniform) bucket.
	return relation.FromRows(s, []relation.Row{
		{relation.Int(0), relation.Str("wpos"), relation.Str("0.5 * byteat(l, 0)")},
		{relation.Int(1), relation.Str("wvel"), relation.Str("byteat(l, 1) - 1")},
		{relation.Int(3), relation.Str("heat"), relation.Str("byteat(l, 0) + 2")},
		{relation.Int(3), relation.Str("cool"), relation.Str("coalesce(v, 0.0) * 2")},
	})
}

// vecPipelines is the coverage matrix: fused runs in every shape,
// window programs that must not fuse, joins with duplicate-key
// buckets, dynamic rules, and the pass-through operators.
func vecPipelines() map[string][]OpDesc {
	return map[string][]OpDesc{
		"filter-only":       {Filter("mid != 2")},
		"filter-chain":      {Filter("mid != 2"), Filter("byteat(l, 0) < 5")},
		"project-only":      {Project("mid", "t")},
		"addcolumn-only":    {AddColumn("b0", relation.KindInt, "byteat(l, 0)")},
		"fused-f-p-a":       {Filter("mid != 2"), Project("t", "mid", "l", "v"), AddColumn("b0", relation.KindInt, "byteat(l, 0)")},
		"fused-a-f-p":       {AddColumn("b0", relation.KindInt, "byteat(l, 0)"), Filter("b0 > 1 && !isnull(v)"), Project("t", "b0", "v")},
		"fused-deep":        {AddColumn("x", relation.KindFloat, "coalesce(v, 0.0)"), AddColumn("y", relation.KindFloat, "x * x + 1"), Filter("y < 50"), Project("t", "y"), AddColumn("z", relation.KindFloat, "y / 2")},
		"window-filter":     {Filter("isnull(lag(v)) || gap(t) > 0.005")},
		"window-addcolumn":  {AddColumn("dv", relation.KindFloat, "delta(v)")},
		"window-mixed":      {Filter("mid != 2"), AddColumn("dt", relation.KindFloat, "gap(t)"), Filter("dt > 0.0"), Project("t", "mid", "dt")},
		"join":              {BroadcastJoin(vecJoinTable(), []string{"mid"}, []string{"rmid"})},
		"join-then-rule":    {BroadcastJoin(vecJoinTable(), []string{"mid"}, []string{"rmid"}), EvalRule("val", relation.KindFloat, "rule")},
		"rule-after-fused":  {Filter("mid == 3 || mid == 1"), BroadcastJoin(vecJoinTable(), []string{"mid"}, []string{"rmid"}), EvalRule("val", relation.KindFloat, "rule"), Filter("!isnull(val)"), Project("t", "sid", "val")},
		"dedup":             {Project("bid", "mid"), DedupConsecutive("mid")},
		"sort":              {SortWithin("mid", "t")},
		"sort-one-key":      {SortWithin("v")},
		"agg":               {PartialAgg([]string{"mid"}, []AggSpec{{Fn: AggCount, As: "n"}})},
		"kitchen-sink":      {Filter("mid != 4"), AddColumn("b0", relation.KindInt, "byteat(l, 0)"), BroadcastJoin(vecJoinTable(), []string{"mid"}, []string{"rmid"}), EvalRule("val", relation.KindFloat, "rule"), SortWithin("sid", "t"), DedupConsecutive("sid", "val"), Project("t", "sid", "val")},
		"empty-pipeline":    {},
		"addcolumn-strings": {AddColumn("tag", relation.KindString, "upper(bid) + '-' + str(mid)"), Filter("contains(tag, '3')")},
		"filter-none-pass":  {Filter("mid == 99")},
		"filter-all-pass":   {Filter("mid >= 0 || isnull(v)")},
	}
}

func rowsBitEqual(a, b []relation.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			x, y := a[i][j], b[i][j]
			if x.K != y.K || x.I != y.I || x.S != y.S ||
				math.Float64bits(x.F) != math.Float64bits(y.F) ||
				len(x.B) != len(y.B) {
				return false
			}
			for k := range x.B {
				if x.B[k] != y.B[k] {
					return false
				}
			}
		}
	}
	return true
}

// TestVectorizedMatchesRows is the engine-local differential check:
// every pipeline shape must produce bitwise-identical output on the
// vectorized and row-at-a-time paths, including partition sizes that
// are empty, smaller than a batch, and spanning several batches.
func TestVectorizedMatchesRows(t *testing.T) {
	sch := vecTestSchema()
	for name, ops := range vecPipelines() {
		t.Run(name, func(t *testing.T) {
			pipe, err := NewStagePipeline(sch, ops)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{0, 1, 17, batchSize, batchSize + 1, 2*batchSize + 331} {
				part := vecTestRows(n)
				want, err := pipe.ApplyRows(part)
				if err != nil {
					t.Fatal(err)
				}
				got, err := pipe.ApplyVectorized(part)
				if err != nil {
					t.Fatal(err)
				}
				if !rowsBitEqual(got, want) {
					t.Fatalf("n=%d: vectorized output diverges from row path (%d vs %d rows)", n, len(got), len(want))
				}
			}
		})
	}
}

// TestVecPlanShapes pins the planner's fusion decisions: window-free
// Filter/Project/AddColumn runs fuse, window programs and the
// remaining operators stay single segments.
func TestVecPlanShapes(t *testing.T) {
	sch := vecTestSchema()
	cases := []struct {
		name     string
		ops      []OpDesc
		segments int
		fused    []bool
	}{
		{"all-fused", []OpDesc{Filter("mid != 2"), Project("t", "mid", "l"), AddColumn("b0", relation.KindInt, "byteat(l, 0)")}, 1, []bool{true}},
		{"window-splits", []OpDesc{Filter("mid != 2"), AddColumn("dt", relation.KindFloat, "gap(t)"), Filter("dt > 0.0")}, 3, []bool{true, false, true}},
		{"join-splits", []OpDesc{Filter("mid != 2"), BroadcastJoin(vecJoinTable(), []string{"mid"}, []string{"rmid"}), Project("t", "sid")}, 3, []bool{true, false, true}},
		{"sort-alone", []OpDesc{SortWithin("t")}, 1, []bool{false}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pipe, err := NewStagePipeline(sch, tc.ops)
			if err != nil {
				t.Fatal(err)
			}
			if len(pipe.vec) != tc.segments {
				t.Fatalf("plan has %d segments, want %d", len(pipe.vec), tc.segments)
			}
			for i, seg := range pipe.vec {
				if (seg.fused != nil) != tc.fused[i] {
					t.Fatalf("segment %d fused=%v, want %v", i, seg.fused != nil, tc.fused[i])
				}
			}
		})
	}
}

// TestFusedRunMaterializesOnce checks the fused-output aliasing
// contract: a fused run with any Project/AddColumn builds fresh
// slab-backed rows (mutating input afterwards must not leak through),
// while a filters-only run passes input row references exactly like
// the row path does.
func TestFusedRunMaterializesOnce(t *testing.T) {
	sch := vecTestSchema()
	part := vecTestRows(100)

	pipe, err := NewStagePipeline(sch, []OpDesc{AddColumn("b0", relation.KindInt, "byteat(l, 0)")})
	if err != nil {
		t.Fatal(err)
	}
	out, err := pipe.ApplyVectorized(part)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0][0] == &part[0][0] {
		t.Fatal("materializing fused run aliases input rows")
	}

	filt, err := NewStagePipeline(sch, []OpDesc{Filter("mid >= 0")})
	if err != nil {
		t.Fatal(err)
	}
	out, err = filt.ApplyVectorized(part)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(part) || &out[0][0] != &part[0][0] {
		t.Fatal("filters-only fused run should pass through input row references")
	}
}

// TestVectorizeToggle checks Apply and ApplyInstrumented honor the
// global toggle both ways.
func TestVectorizeToggle(t *testing.T) {
	sch := vecTestSchema()
	pipe, err := NewStagePipeline(sch, []OpDesc{Filter("mid != 2"), AddColumn("b0", relation.KindInt, "byteat(l, 0)")})
	if err != nil {
		t.Fatal(err)
	}
	part := vecTestRows(500)
	if !Vectorize.Load() {
		t.Fatal("Vectorize must default on")
	}
	defer Vectorize.Store(true)
	for _, on := range []bool{true, false} {
		Vectorize.Store(on)
		before := vectorizedBatchesCtr.Value()
		if _, err := pipe.Apply(part); err != nil {
			t.Fatal(err)
		}
		if _, err := pipe.ApplyInstrumented(part); err != nil {
			t.Fatal(err)
		}
		advanced := vectorizedBatchesCtr.Value() > before
		if advanced != on {
			t.Fatalf("Vectorize=%v: batch counter advanced=%v", on, advanced)
		}
	}
}

// TestFusedCountersAdvance checks the telemetry satellite: a fused run
// bumps engine_vectorized_batches_total and the per-op fused-step
// counters for exactly its constituent kinds.
func TestFusedCountersAdvance(t *testing.T) {
	sch := vecTestSchema()
	pipe, err := NewStagePipeline(sch, []OpDesc{Filter("mid != 2"), Project("t", "mid"), SortWithin("t")})
	if err != nil {
		t.Fatal(err)
	}
	b0 := vectorizedBatchesCtr.Value()
	f0 := fusedStepsCtr[OpFilter].Value()
	p0 := fusedStepsCtr[OpProject].Value()
	s0 := fusedStepsCtr[OpSortWithin].Value()
	if _, err := pipe.ApplyVectorized(vecTestRows(3 * batchSize)); err != nil {
		t.Fatal(err)
	}
	if got := vectorizedBatchesCtr.Value() - b0; got != 3 {
		t.Fatalf("vectorized batches delta = %d, want 3", got)
	}
	if fusedStepsCtr[OpFilter].Value() != f0+1 || fusedStepsCtr[OpProject].Value() != p0+1 {
		t.Fatal("fused-step counters for filter/project did not advance by one run")
	}
	if fusedStepsCtr[OpSortWithin].Value() != s0 {
		t.Fatal("sortwithin is not fusable and must not count as a fused step")
	}
}

// TestDebugMutateSelection proves the injection hook actually changes
// fused-run output — the property the difftest injected-bug test
// relies on.
func TestDebugMutateSelection(t *testing.T) {
	sch := vecTestSchema()
	pipe, err := NewStagePipeline(sch, []OpDesc{Filter("mid >= 0"), Project("t", "mid")})
	if err != nil {
		t.Fatal(err)
	}
	part := vecTestRows(10)
	DebugMutateSelection = func(sel []int32) []int32 {
		if len(sel) > 0 {
			return sel[:len(sel)-1]
		}
		return sel
	}
	defer func() { DebugMutateSelection = nil }()
	got, err := pipe.ApplyVectorized(part)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(part)-1 {
		t.Fatalf("selection mutation dropped %d rows, want 1", len(part)-len(got))
	}
}

// TestStatsAddExhaustive walks Stats with reflection: setting any
// single field of the operand must show up in the sum, so a new
// counter added to the struct without an Add line fails here instead
// of silently dropping data.
func TestStatsAddExhaustive(t *testing.T) {
	typ := reflect.TypeOf(Stats{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		var o Stats
		ov := reflect.ValueOf(&o).Elem().Field(i)
		switch f.Type.Kind() {
		case reflect.Int, reflect.Int64:
			ov.SetInt(int64(i + 1))
		default:
			t.Fatalf("Stats field %s has unsupported kind %s; teach this test about it", f.Name, f.Type.Kind())
		}
		var sum Stats
		sum.Add(o)
		if got := reflect.ValueOf(sum).Field(i).Int(); got != int64(i+1) {
			t.Fatalf("Stats.Add drops field %s: sum has %d, want %d", f.Name, got, i+1)
		}
		// The other fields must stay untouched.
		sum.Add(o)
		for j := 0; j < typ.NumField(); j++ {
			want := int64(0)
			if j == i {
				want = 2 * int64(i+1)
			}
			if got := reflect.ValueOf(sum).Field(j).Int(); got != want {
				t.Fatalf("Stats.Add(%s) perturbs field %s: %d, want %d", f.Name, typ.Field(j).Name, got, want)
			}
		}
	}
}
