package engine

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"ivnt/internal/memgov"
	"ivnt/internal/relation"
)

// resetSpillDebug disarms every spill/panic debug hook when the test
// ends, so a failing subtest cannot poison the rest of the package run.
func resetSpillDebug(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		DebugForceSpill.Store(false)
		SetDebugSpillFailure(nil)
		SetDebugSpillTruncate(0)
		SetDebugApplyHook(nil)
	})
}

// withBudget installs a temporary budget on the process governor and
// restores the previous one (normally unlimited) on cleanup.
func withBudget(t *testing.T, budget int64) *memgov.Governor {
	t.Helper()
	g := memgov.Default()
	old := g.Budget()
	g.SetBudget(budget)
	g.ResetHighWater()
	t.Cleanup(func() {
		g.SetBudget(old)
		g.ResetHighWater()
	})
	return g
}

// spillRows builds n trace-schema rows with heavy sort-key duplication
// (ties expose merge stability), plus null and empty payloads so the
// spill codec round-trip is exercised on every value shape.
func spillRows(n int) []relation.Row {
	rows := make([]relation.Row, n)
	for i := range rows {
		l := relation.Bytes([]byte{byte(i % 7), byte(i % 3), byte(i % 251)})
		switch i % 13 {
		case 0:
			l = relation.Null()
		case 1:
			l = relation.Bytes(nil)
		}
		rows[i] = relation.Row{
			relation.Float(float64(n-i) * 0.25),
			relation.Str(fmt.Sprintf("B%d", i%3)),
			relation.Int(int64(3 + i%2)),
			l,
		}
	}
	return rows
}

func cellsEq(a, b relation.Value) bool {
	if a.K != b.K {
		return false
	}
	switch a.K {
	case relation.KindNull:
		return true
	case relation.KindBool, relation.KindInt:
		return a.I == b.I
	case relation.KindFloat:
		return math.Float64bits(a.F) == math.Float64bits(b.F)
	case relation.KindString:
		return a.S == b.S
	case relation.KindBytes:
		return string(a.B) == string(b.B)
	default:
		return false
	}
}

func rowsEq(t *testing.T, label string, want, got []relation.Row) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for ri := range want {
		if len(want[ri]) != len(got[ri]) {
			t.Fatalf("%s: row %d width %d, want %d", label, ri, len(got[ri]), len(want[ri]))
		}
		for ci := range want[ri] {
			if !cellsEq(want[ri][ci], got[ri][ci]) {
				t.Fatalf("%s: row %d col %d = %v, want %v", label, ri, ci, got[ri][ci], want[ri][ci])
			}
		}
	}
}

func sortPipe(t *testing.T, cols ...string) *StagePipeline {
	t.Helper()
	pipe, err := NewStagePipeline(traceSchema(), []OpDesc{SortWithin(cols...)})
	if err != nil {
		t.Fatal(err)
	}
	return pipe
}

func aggPipe(t *testing.T) *StagePipeline {
	t.Helper()
	pipe, err := NewStagePipeline(traceSchema(), []OpDesc{PartialAgg(
		[]string{"bid", "mid"},
		[]AggSpec{
			{Fn: AggCount, As: "n"},
			{Fn: AggSum, Col: "t", As: "tsum"},
			{Fn: AggMean, Col: "t", As: "tmean"},
			{Fn: AggMin, Col: "t", As: "tmin"},
			{Fn: AggMax, Col: "t", As: "tmax"},
		})})
	if err != nil {
		t.Fatal(err)
	}
	return pipe
}

// TestSpillSortBitwiseEqual holds the external merge sort bitwise-equal
// to the in-memory sort.SliceStable path, on the forced single-run
// shape and on a tiny budget that produces many multi-block runs.
func TestSpillSortBitwiseEqual(t *testing.T) {
	rows := spillRows(4001)
	pipe := sortPipe(t, "mid", "bid")
	want, err := pipe.ApplyRows(rows)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("forced", func(t *testing.T) {
		resetSpillDebug(t)
		before := mSpills.With("sortwithin").Value()
		DebugForceSpill.Store(true)
		got, err := pipe.ApplyRows(rows)
		if err != nil {
			t.Fatal(err)
		}
		rowsEq(t, "forced spill sort", want, got)
		if d := mSpills.With("sortwithin").Value() - before; d < 1 {
			t.Fatalf("engine_spills_total{op=sortwithin} delta = %d, want >= 1", d)
		}
	})

	t.Run("tiny-budget", func(t *testing.T) {
		resetSpillDebug(t)
		g := withBudget(t, 16<<10)
		beforeBytes := mSpillBytes.With("sortwithin").Value()
		got, err := pipe.ApplyRows(rows)
		if err != nil {
			t.Fatal(err)
		}
		rowsEq(t, "tiny-budget sort", want, got)
		if d := mSpillBytes.With("sortwithin").Value() - beforeBytes; d <= 0 {
			t.Fatalf("engine_spill_bytes_total{op=sortwithin} delta = %d, want > 0", d)
		}
		if g.Denials() == 0 {
			t.Fatal("governor recorded no denials under a 16KiB budget")
		}
	})
}

// TestSpillSortEdgeShapes covers the degenerate inputs: an empty
// partition, a single row, and a segment boundary exactly at the end.
func TestSpillSortEdgeShapes(t *testing.T) {
	resetSpillDebug(t)
	DebugForceSpill.Store(true)
	pipe := sortPipe(t, "mid", "t")
	for _, n := range []int{0, 1, 2, 17} {
		rows := spillRows(n)
		got, err := pipe.ApplyRows(rows)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		DebugForceSpill.Store(false)
		want, err := pipe.ApplyRows(rows)
		DebugForceSpill.Store(true)
		if err != nil {
			t.Fatal(err)
		}
		rowsEq(t, fmt.Sprintf("spill sort n=%d", n), want, got)
	}
}

// TestSpillAggBitwiseEqual holds grace hash aggregation bitwise-equal
// to the in-memory hash table, including float sums whose accumulation
// order must survive the shard detour.
func TestSpillAggBitwiseEqual(t *testing.T) {
	rows := spillRows(3000)
	pipe := aggPipe(t)
	want, err := pipe.ApplyRows(rows)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("forced", func(t *testing.T) {
		resetSpillDebug(t)
		before := mSpills.With("partialagg").Value()
		DebugForceSpill.Store(true)
		got, err := pipe.ApplyRows(rows)
		if err != nil {
			t.Fatal(err)
		}
		rowsEq(t, "forced spill agg", want, got)
		if d := mSpills.With("partialagg").Value() - before; d < 1 {
			t.Fatalf("engine_spills_total{op=partialagg} delta = %d, want >= 1", d)
		}
	})

	t.Run("tiny-budget", func(t *testing.T) {
		resetSpillDebug(t)
		withBudget(t, 16<<10)
		got, err := pipe.ApplyRows(rows)
		if err != nil {
			t.Fatal(err)
		}
		rowsEq(t, "tiny-budget agg", want, got)
	})
}

// TestSpillVectorizedPathEqual runs the same governed kernels through
// Apply with the vectorized planner on and off: applyVecSingle routes
// sort/agg to the row kernels, so the spill paths must be identical.
func TestSpillVectorizedPathEqual(t *testing.T) {
	resetSpillDebug(t)
	rows := spillRows(2000)
	old := Vectorize.Load()
	t.Cleanup(func() { Vectorize.Store(old) })

	for _, pipe := range []*StagePipeline{sortPipe(t, "mid", "bid"), aggPipe(t)} {
		want, err := pipe.ApplyRows(rows)
		if err != nil {
			t.Fatal(err)
		}
		DebugForceSpill.Store(true)
		for _, vec := range []bool{false, true} {
			Vectorize.Store(vec)
			got, err := pipe.Apply(rows)
			if err != nil {
				t.Fatal(err)
			}
			rowsEq(t, fmt.Sprintf("vectorize=%v", vec), want, got)
		}
		DebugForceSpill.Store(false)
	}
}

// TestMergePartialsSpillEqual drives the governed FinalAggregate merge
// down its external path and holds it bitwise-equal to the in-memory
// merge across multi-partition partials.
func TestMergePartialsSpillEqual(t *testing.T) {
	groupBy := []string{"bid", "mid"}
	aggs := []AggSpec{
		{Fn: AggCount, As: "n"},
		{Fn: AggSum, Col: "t", As: "tsum"},
		{Fn: AggMean, Col: "t", As: "tmean"},
	}
	rel := relation.FromRows(traceSchema(), spillRows(2400)).Repartition(7)
	partials := &relation.Relation{Partitions: make([][]relation.Row, len(rel.Partitions))}
	for pi, part := range rel.Partitions {
		rows, err := applyPartialAgg(rel.Schema, part, groupBy, aggs)
		if err != nil {
			t.Fatal(err)
		}
		partials.Partitions[pi] = rows
	}
	ps, err := partialAggSchema(rel.Schema, groupBy, aggs)
	if err != nil {
		t.Fatal(err)
	}
	partials.Schema = ps

	want, err := MergePartials(partials, groupBy, aggs)
	if err != nil {
		t.Fatal(err)
	}

	resetSpillDebug(t)
	before := mSpills.With("finalagg").Value()
	DebugForceSpill.Store(true)
	got, err := MergePartials(partials, groupBy, aggs)
	if err != nil {
		t.Fatal(err)
	}
	rowsEq(t, "external merge partials", want.Rows(), got.Rows())
	if !want.Schema.Equal(got.Schema) {
		t.Fatalf("schema diverged: %s vs %s", want.Schema, got.Schema)
	}
	if d := mSpills.With("finalagg").Value() - before; d < 1 {
		t.Fatalf("engine_spills_total{op=finalagg} delta = %d, want >= 1", d)
	}
}

// TestSortRelationSpillEqual holds the governed global sort equal to
// relation.SortBy, and checks the unknown-key error path.
func TestSortRelationSpillEqual(t *testing.T) {
	resetSpillDebug(t)
	rel := relation.FromRows(traceSchema(), spillRows(3000)).Repartition(5)
	want, err := rel.SortBy(true, "mid", "bid")
	if err != nil {
		t.Fatal(err)
	}
	DebugForceSpill.Store(true)
	got, err := SortRelation(rel, "mid", "bid")
	if err != nil {
		t.Fatal(err)
	}
	rowsEq(t, "external global sort", want.Rows(), got.Rows())

	if _, err := SortRelation(rel, "nope"); err == nil || !strings.Contains(err.Error(), "sort key") {
		t.Fatalf("unknown key error = %v", err)
	}
}

// TestSpillBudgetBoundary pins the grant-admission boundary: a budget
// exactly equal to the declared working set stays in memory; one byte
// less spills.
func TestSpillBudgetBoundary(t *testing.T) {
	resetSpillDebug(t)
	rows := spillRows(512)
	need := RowsFootprint(rows)
	pipe := sortPipe(t, "mid")
	want, err := pipe.ApplyRows(rows)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("exact-fit", func(t *testing.T) {
		withBudget(t, need)
		before := mSpills.With("sortwithin").Value()
		got, err := pipe.ApplyRows(rows)
		if err != nil {
			t.Fatal(err)
		}
		rowsEq(t, "exact-fit sort", want, got)
		if d := mSpills.With("sortwithin").Value() - before; d != 0 {
			t.Fatalf("budget == need spilled %d times, want in-memory", d)
		}
	})

	t.Run("one-byte-short", func(t *testing.T) {
		withBudget(t, need-1)
		before := mSpills.With("sortwithin").Value()
		got, err := pipe.ApplyRows(rows)
		if err != nil {
			t.Fatal(err)
		}
		rowsEq(t, "one-byte-short sort", want, got)
		if d := mSpills.With("sortwithin").Value() - before; d != 1 {
			t.Fatalf("budget == need-1 spilled %d times, want exactly 1", d)
		}
	})
}

// TestSpillBoundedWorkingSet runs a working set four times the budget
// through the governed kernels and asserts the governor's high-water
// mark stays bounded: the whole point of degrading to disk.
func TestSpillBoundedWorkingSet(t *testing.T) {
	resetSpillDebug(t)
	const budget = 64 << 10

	// ~290 bytes/row -> >= 4x the 64KiB budget.
	rows := spillRows(1024)
	if foot := RowsFootprint(rows); foot < 4*budget {
		t.Fatalf("workload footprint %d < 4x budget %d; grow the input", foot, 4*budget)
	}

	sp := sortPipe(t, "mid", "bid")
	ap := aggPipe(t)
	wantSort, err := sp.ApplyRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	wantAgg, err := ap.ApplyRows(rows)
	if err != nil {
		t.Fatal(err)
	}

	g := withBudget(t, budget)

	g.ResetHighWater()
	gotSort, err := sp.ApplyRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	rowsEq(t, "bounded sort", wantSort, gotSort)
	if hw := g.HighWater(); hw > budget {
		t.Fatalf("sort high-water %d exceeds budget %d", hw, budget)
	}

	// Grace hash aggregation is bounded per shard, not per byte: with 6
	// distinct group keys over 8 shards, the worst shard can hold a
	// multiple of input/8 (the skew caveat in docs/MEMORY.md), so the
	// bound is a small multiple of the budget — still far below the 4x
	// working set that an ungoverned pass would pin.
	g.ResetHighWater()
	gotAgg, err := ap.ApplyRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	rowsEq(t, "bounded agg", wantAgg, gotAgg)
	if hw := g.HighWater(); hw > 2*budget {
		t.Fatalf("agg high-water %d exceeds 2x budget %d", hw, 2*budget)
	}
}

// TestSpillFaultInjection verifies the error taxonomy: every injected
// spill I/O failure surfaces as a retryable task error (never a panic,
// never a process death), and a transient fault succeeds on retry.
func TestSpillFaultInjection(t *testing.T) {
	rows := spillRows(600)
	pipe := sortPipe(t, "mid")
	want, err := pipe.ApplyRows(rows)
	if err != nil {
		t.Fatal(err)
	}

	for _, op := range []string{"create", "write", "read"} {
		t.Run(op, func(t *testing.T) {
			resetSpillDebug(t)
			DebugForceSpill.Store(true)
			SetDebugSpillFailure(func(got string) error {
				if got == op {
					return errors.New("injected: no space left on device")
				}
				return nil
			})
			_, err := pipe.ApplyRows(rows)
			if err == nil {
				t.Fatalf("spill %s fault produced no error", op)
			}
			if !IsRetryable(err) {
				t.Fatalf("spill %s fault not retryable: %v", op, err)
			}
			if !strings.Contains(err.Error(), "spill "+op) {
				t.Fatalf("spill %s fault lacks operation context: %v", op, err)
			}
		})
	}

	t.Run("transient-then-recover", func(t *testing.T) {
		resetSpillDebug(t)
		DebugForceSpill.Store(true)
		var remaining atomic.Int64
		remaining.Store(1)
		SetDebugSpillFailure(func(op string) error {
			if op == "create" && remaining.Add(-1) >= 0 {
				return errors.New("injected ENOSPC")
			}
			return nil
		})
		if _, err := pipe.ApplyRows(rows); !IsRetryable(err) {
			t.Fatalf("first attempt: %v, want retryable", err)
		}
		// The "disk" recovers; the retried task must now succeed — the
		// requeue contract the cluster driver builds on.
		got, err := pipe.ApplyRows(rows)
		if err != nil {
			t.Fatalf("retry after fault cleared: %v", err)
		}
		rowsEq(t, "retry after transient fault", want, got)
	})

	t.Run("truncated-run", func(t *testing.T) {
		resetSpillDebug(t)
		DebugForceSpill.Store(true)
		SetDebugSpillTruncate(5)
		_, err := pipe.ApplyRows(rows)
		if err == nil || !IsRetryable(err) {
			t.Fatalf("truncated spill run: err = %v, want retryable", err)
		}
	})
}

// TestErrorTaxonomy pins the wrapping contract the driver relies on.
func TestErrorTaxonomy(t *testing.T) {
	if Retryable(nil) != nil {
		t.Fatal("Retryable(nil) != nil")
	}
	wrapped := fmt.Errorf("stage 3: %w", Retryable(errors.New("disk full")))
	if !IsRetryable(wrapped) {
		t.Fatal("IsRetryable lost through fmt.Errorf wrapping")
	}
	if IsRetryable(errors.New("plain")) || IsPanic(errors.New("plain")) {
		t.Fatal("plain error misclassified")
	}
	pe := &PanicError{Val: "boom", Stack: []byte("stack")}
	if !IsPanic(fmt.Errorf("task: %w", pe)) {
		t.Fatal("IsPanic lost through wrapping")
	}
	if !strings.Contains(pe.Error(), "task panic: boom") {
		t.Fatalf("PanicError text = %q", pe.Error())
	}
}

// TestPanicContainmentLocal injects a panicking operator into the local
// executor: the stage must fail with a diagnosable PanicError while the
// process (and the executor for later stages) stays alive.
func TestPanicContainmentLocal(t *testing.T) {
	resetSpillDebug(t)
	SetDebugApplyHook(func() { panic("boom") })
	exec := NewLocal(2)
	_, _, err := exec.RunStage(ctx, makeTrace(50, 4), []OpDesc{Filter("mid == 3")})
	if err == nil {
		t.Fatal("panicking stage returned no error")
	}
	if !IsPanic(err) {
		t.Fatalf("stage error is not a PanicError: %v", err)
	}
	if !strings.Contains(err.Error(), "task panic: boom") {
		t.Fatalf("panic diagnostic missing value: %v", err)
	}

	// Containment means the executor is still usable afterwards.
	SetDebugApplyHook(nil)
	out, _, err := exec.RunStage(ctx, makeTrace(50, 4), []OpDesc{Filter("mid == 3")})
	if err != nil {
		t.Fatalf("executor unusable after contained panic: %v", err)
	}
	if out.NumRows() != 25 {
		t.Fatalf("rows after recovery = %d, want 25", out.NumRows())
	}
}

// TestVerifySpillMetrics gates the spill metric catalogue the same way
// VerifyOpMetrics gates the operator histograms.
func TestVerifySpillMetrics(t *testing.T) {
	if err := VerifySpillMetrics(); err != nil {
		t.Fatal(err)
	}
}
