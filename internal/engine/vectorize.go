package engine

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ivnt/internal/expr"
	"ivnt/internal/relation"
)

// This file is the vectorized batch execution path. Instead of walking
// one row at a time through each operator — a recursive expression
// interpretation and a fresh row allocation per operator per row — the
// pipeline is planned once into segments: maximal runs of fusable
// window-free Filter/Project/AddColumn steps execute as a single pass
// over 1024-row batches with a selection vector, materializing output
// rows exactly once per fused run out of a shared slab, and the
// remaining operators get batch-aware kernels (notably the broadcast
// join, which pre-hashes probe keys per batch and skips per-candidate
// key re-checks on single-key buckets). The row-at-a-time path stays
// behind ApplyRows as the bit-exact reference; internal/difftest holds
// the two to bitwise equality on every seeded workload.

// Vectorize selects the execution path used by Apply and
// ApplyInstrumented on every executor. Default on; flip off to fall
// back to the row-at-a-time reference path (the differential harness
// and benchmarks exercise both explicitly).
var Vectorize atomic.Bool

// RunSkip enables run skipping inside fused filter steps: when
// consecutive selected rows carry bitwise-identical cells in every
// column the filter reads, the previous verdict is reused instead of
// re-evaluating the program. Dict/RLE-encoded segment scans produce
// exactly this shape — long runs of repeated status values — so on
// low-cardinality traces most filter evaluations collapse into memcmp
// of a few cells. Sound because fused filters are window-free (fusable
// excludes window programs) and every expression builtin is pure: equal
// inputs give equal verdicts. Default on; the differential harness
// exercises both settings.
var RunSkip atomic.Bool

func init() {
	Vectorize.Store(true)
	RunSkip.Store(true)
}

// batchSize is the number of input rows processed per fused batch.
// 1024 rows keeps a batch's selection vector and scratch columns in
// cache while amortizing per-batch overhead.
const batchSize = 1024

// DebugMutateSelection, when non-nil, rewrites the selection vector
// after every fused filter step. It exists solely so the differential
// harness can inject a selection-vector bug and prove it would be
// caught; production code never sets it.
var DebugMutateSelection func(sel []int32) []int32

// vecSegment is one planned unit of vectorized execution: either a
// fused run of Filter/Project/AddColumn steps or a single operator.
type vecSegment struct {
	fused *fusedRun
	step  int // index into StagePipeline.steps when fused == nil
}

// fusedStep is one executable step inside a fused run. Project steps
// compile away entirely — they only permute the output mapping.
type fusedStep struct {
	kind OpKind
	prog *expr.FlatProgram // column-remapped into the run's physical space
	dst  int               // scratch slot written by OpAddColumn, -1 for OpFilter
	// skipCols, when non-nil, lists the input row columns this filter
	// reads — the columns whose bitwise equality across rows licenses
	// verdict reuse. nil disables run skipping for the step (the program
	// reads a scratch column or uses window state).
	skipCols []int32
}

// fusedRun is a maximal run of fusable steps compiled against a fixed
// physical column space: indexes below inWidth are input row columns,
// inWidth+k is scratch column k. outSrc maps each output column to its
// physical source; copyOut is false when the run is filters-only and
// output rows are the input rows themselves.
type fusedRun struct {
	kinds    []OpKind // constituent op kinds, in order (for ObserveOp)
	steps    []fusedStep
	inWidth  int
	nScratch int
	outSrc   []int32
	copyOut  bool
	// outRow/outScratch split outSrc by source so the materialize loop
	// avoids a per-cell branch: output column dst copies from input row
	// column src, respectively scratch column src.
	outRow     []srcMap
	outScratch []srcMap
}

type srcMap struct{ dst, src int32 }

// vecScratch is the pooled per-Apply working set: selection vector,
// scratch columns, probe-hash buffer and the flat-program machine.
type vecScratch struct {
	sel     []int32
	cols    [][]relation.Value
	hashes  []uint64
	machine expr.Machine
}

var vecPool = sync.Pool{New: func() any { return &vecScratch{} }}

// fusable reports whether a compiled step may join a fused run. Window
// programs are excluded: lag history must see the operator's own input
// rows, which fusion by design never materializes.
func fusable(st *compiledOp) bool {
	switch st.desc.Kind {
	case OpProject:
		return true
	case OpFilter, OpAddColumn:
		return !st.prog.UsesWindow()
	}
	return false
}

// buildVecPlan slices the compiled steps into fused runs and single-op
// segments. Called once from NewStagePipeline.
func (p *StagePipeline) buildVecPlan() {
	var run []int
	flush := func() {
		if len(run) == 0 {
			return
		}
		p.vec = append(p.vec, vecSegment{fused: p.compileFusedRun(run)})
		run = nil
	}
	for i := range p.steps {
		if fusable(&p.steps[i]) {
			run = append(run, i)
			continue
		}
		flush()
		p.vec = append(p.vec, vecSegment{step: i})
	}
	flush()
}

// compileFusedRun remaps each step's program from its logical input
// schema into the run's physical column space and folds projections
// into the output mapping.
func (p *StagePipeline) compileFusedRun(stepIdx []int) *fusedRun {
	first := &p.steps[stepIdx[0]]
	run := &fusedRun{inWidth: len(first.in.Cols)}
	// cur maps the current intermediate schema's logical columns to
	// physical indexes.
	cur := make([]int32, run.inWidth)
	for i := range cur {
		cur[i] = int32(i)
	}
	for _, si := range stepIdx {
		st := &p.steps[si]
		run.kinds = append(run.kinds, st.desc.Kind)
		switch st.desc.Kind {
		case OpFilter:
			remapped := st.prog.Flatten().RemapColumns(func(c int) int { return int(cur[c]) })
			run.steps = append(run.steps, fusedStep{kind: OpFilter, prog: remapped, dst: -1,
				skipCols: skipColumns(remapped, run.inWidth)})
		case OpAddColumn:
			remapped := st.prog.Flatten().RemapColumns(func(c int) int { return int(cur[c]) })
			slot := run.nScratch
			run.nScratch++
			run.steps = append(run.steps, fusedStep{kind: OpAddColumn, prog: remapped, dst: slot})
			cur = append(cur, int32(run.inWidth+slot))
			run.copyOut = true
		case OpProject:
			next := make([]int32, len(st.colIdx))
			for k, ci := range st.colIdx {
				next[k] = cur[ci]
			}
			cur = next
			run.copyOut = true
		}
	}
	run.outSrc = cur
	for k, src := range cur {
		if int(src) < run.inWidth {
			run.outRow = append(run.outRow, srcMap{int32(k), src})
		} else {
			run.outScratch = append(run.outScratch, srcMap{int32(k), src - int32(run.inWidth)})
		}
	}
	return run
}

// skipColumns returns the filter's referenced columns when every one is
// an input row column (physical index below inWidth) and the program is
// window-free — the conditions under which bitwise-equal referenced
// cells guarantee an equal verdict. Any scratch-column or window
// reference returns nil, disabling run skipping for the step.
func skipColumns(fp *expr.FlatProgram, inWidth int) []int32 {
	if fp.Window {
		return nil
	}
	cols := fp.Columns()
	out := make([]int32, len(cols))
	for k, c := range cols {
		if c >= inWidth {
			return nil
		}
		out[k] = int32(c)
	}
	return out
}

// cellsSameBits reports bitwise equality of the given columns across
// two rows, with short rows reading as null exactly like OpPushCol.
func cellsSameBits(a, b relation.Row, cols []int32) bool {
	for _, c := range cols {
		av, bv := relation.Null(), relation.Null()
		if int(c) < len(a) {
			av = a[c]
		}
		if int(c) < len(b) {
			bv = b[c]
		}
		if av.K != bv.K || av.I != bv.I ||
			math.Float64bits(av.F) != math.Float64bits(bv.F) ||
			av.S != bv.S || !bytes.Equal(av.B, bv.B) {
			return false
		}
	}
	return true
}

// ApplyVectorized runs the pipeline over one partition on the
// vectorized path regardless of the Vectorize toggle. The input slice
// is never mutated.
func (p *StagePipeline) ApplyVectorized(part []relation.Row) ([]relation.Row, error) {
	return p.applyVec(part, false)
}

func (p *StagePipeline) applyVec(part []relation.Row, instrument bool) ([]relation.Row, error) {
	sc := vecPool.Get().(*vecScratch)
	defer vecPool.Put(sc)
	rows := part
	for _, seg := range p.vec {
		var t0 time.Time
		if instrument {
			t0 = time.Now()
		}
		if seg.fused != nil {
			rows = runFused(seg.fused, rows, sc)
			if instrument {
				// A fused run is one pass: each constituent operator is
				// observed with the run's duration (see docs/PERFORMANCE.md).
				d := time.Since(t0)
				for _, k := range seg.fused.kinds {
					ObserveOp(k, d)
				}
			}
			continue
		}
		st := &p.steps[seg.step]
		out, err := st.applyVecSingle(rows, sc)
		if instrument {
			ObserveOp(st.desc.Kind, time.Since(t0))
		}
		if err != nil {
			return nil, err
		}
		rows = out
	}
	return rows, nil
}

// applyVecSingle dispatches one non-fused operator to its batch-aware
// kernel, falling back to the row kernel for operators whose work is
// inherently whole-partition (dedup, sort, partial agg).
func (st *compiledOp) applyVecSingle(rows []relation.Row, sc *vecScratch) ([]relation.Row, error) {
	switch st.desc.Kind {
	case OpBroadcastJoin:
		return st.applyJoinVec(rows, sc), nil
	case OpFilter:
		return applyWindowFilter(st.prog.Flatten(), rows, sc), nil
	case OpAddColumn:
		return applyWindowAddCol(st.prog.Flatten(), rows, sc), nil
	case OpEvalRule:
		return st.applyEvalRuleVec(rows, sc)
	}
	return st.apply(rows)
}

// runFused executes one fused run over the partition in batches. Per
// batch: seed the selection vector, run each step over the surviving
// selection (filters compact it in place, computed columns write their
// scratch vector at selected positions only), then materialize the
// survivors once — a single slab allocation for the whole batch.
func runFused(run *fusedRun, rows []relation.Row, sc *vecScratch) []relation.Row {
	out := make([]relation.Row, 0, len(rows))
	if cap(sc.sel) < batchSize {
		sc.sel = make([]int32, batchSize)
	}
	for len(sc.cols) < run.nScratch {
		sc.cols = append(sc.cols, nil)
	}
	for i := 0; i < run.nScratch; i++ {
		if cap(sc.cols[i]) < batchSize {
			sc.cols[i] = make([]relation.Value, batchSize)
		}
		sc.cols[i] = sc.cols[i][:batchSize]
	}
	w := len(run.outSrc)
	for lo := 0; lo < len(rows); lo += batchSize {
		hi := min(lo+batchSize, len(rows))
		sel := sc.sel[:0]
		for i := lo; i < hi; i++ {
			sel = append(sel, int32(i))
		}
		for si := range run.steps {
			step := &run.steps[si]
			if step.dst < 0 {
				kept := sel[:0]
				if step.skipCols != nil && RunSkip.Load() {
					// Run skipping: selected rows whose referenced cells are
					// bitwise-identical to the previously evaluated row reuse
					// its verdict. RLE-shaped data makes these runs long.
					last := int32(-1)
					verdict := false
					skipped := int64(0)
					for _, i := range sel {
						if last >= 0 && cellsSameBits(rows[i], rows[last], step.skipCols) {
							skipped++
						} else {
							verdict = sc.machine.EvalColsAt(step.prog, rows, int(i), run.inWidth, sc.cols, lo).AsBool()
							last = i
						}
						if verdict {
							kept = append(kept, i)
						}
					}
					if skipped > 0 {
						runSkipRowsCtr.Add(skipped)
					}
				} else {
					for _, i := range sel {
						if sc.machine.EvalColsAt(step.prog, rows, int(i), run.inWidth, sc.cols, lo).AsBool() {
							kept = append(kept, i)
						}
					}
				}
				sel = kept
				if DebugMutateSelection != nil {
					sel = DebugMutateSelection(sel)
				}
			} else {
				dst := sc.cols[step.dst]
				for _, i := range sel {
					dst[int(i)-lo] = sc.machine.EvalColsAt(step.prog, rows, int(i), run.inWidth, sc.cols, lo)
				}
			}
		}
		if !run.copyOut {
			for _, i := range sel {
				out = append(out, rows[i])
			}
			continue
		}
		slab := make([]relation.Value, len(sel)*w)
		for n, i := range sel {
			nr := relation.Row(slab[n*w : (n+1)*w : (n+1)*w])
			r := rows[i]
			for _, m := range run.outRow {
				nr[m.dst] = r[m.src]
			}
			for _, m := range run.outScratch {
				nr[m.dst] = sc.cols[m.src][int(i)-lo]
			}
			out = append(out, nr)
		}
	}
	vectorizedBatchesCtr.Add(int64((len(rows) + batchSize - 1) / batchSize))
	for _, k := range run.kinds {
		fusedStepsCtr[k].Inc()
	}
	return out
}

// slab hands out fixed-width rows sliced from chunked backing arrays:
// one allocation per batchSize rows instead of one per row. Rows are
// capacity-clamped so appending to one can never bleed into its
// neighbor.
type slab struct {
	buf []relation.Value
	w   int
}

func (s *slab) next() relation.Row {
	if len(s.buf) < s.w {
		s.buf = make([]relation.Value, s.w*batchSize)
	}
	r := relation.Row(s.buf[:s.w:s.w])
	s.buf = s.buf[s.w:]
	return r
}

// applyJoinVec probes the broadcast table batch-at-a-time: probe keys
// are pre-hashed into a reused buffer, and buckets whose build rows all
// share one key (the common case — a multi-row bucket otherwise means
// a 64-bit hash collision) verify keysEqual once per probe row instead
// of once per candidate.
func (st *compiledOp) applyJoinVec(rows []relation.Row, sc *vecScratch) []relation.Row {
	var out []relation.Row
	inW := len(st.in.Cols)
	sl := slab{w: inW + len(st.keepIdx)}
	if cap(sc.hashes) < batchSize {
		sc.hashes = make([]uint64, batchSize)
	}
	for lo := 0; lo < len(rows); lo += batchSize {
		hi := min(lo+batchSize, len(rows))
		hs := sc.hashes[:hi-lo]
		for i := lo; i < hi; i++ {
			hs[i-lo] = rows[i].Hash(st.leftIdx...)
		}
		vectorizedBatchesCtr.Inc()
		for i := lo; i < hi; i++ {
			b := st.hash[hs[i-lo]]
			if b == nil {
				continue
			}
			r := rows[i]
			if b.uniform {
				if !keysEqual(r, b.rows[0], st.leftIdx, st.rightIdx) {
					continue
				}
				for _, cand := range b.rows {
					out = append(out, joinRow(&sl, r, cand, st.keepIdx))
				}
				continue
			}
			for _, cand := range b.rows {
				if keysEqual(r, cand, st.leftIdx, st.rightIdx) {
					out = append(out, joinRow(&sl, r, cand, st.keepIdx))
				}
			}
		}
	}
	return out
}

func joinRow(sl *slab, r, cand relation.Row, keepIdx []int) relation.Row {
	nr := sl.next()
	copy(nr, r)
	for k, ci := range keepIdx {
		nr[len(r)+k] = cand[ci]
	}
	return nr
}

// applyWindowFilter is the batch kernel for window-using filters: flat
// evaluation over the full partition (lag must see this operator's
// input), output rows are references so no slab is needed.
func applyWindowFilter(fp *expr.FlatProgram, rows []relation.Row, sc *vecScratch) []relation.Row {
	out := make([]relation.Row, 0, len(rows))
	for i := range rows {
		if sc.machine.EvalBoolAt(fp, rows, i) {
			out = append(out, rows[i])
		}
	}
	vectorizedBatchesCtr.Inc()
	return out
}

// applyWindowAddCol is the batch kernel for window-using computed
// columns: flat evaluation over the full partition, slab-backed output
// rows.
func applyWindowAddCol(fp *expr.FlatProgram, rows []relation.Row, sc *vecScratch) []relation.Row {
	out := make([]relation.Row, 0, len(rows))
	if len(rows) == 0 {
		return out
	}
	sl := slab{w: len(rows[0]) + 1}
	for i, r := range rows {
		nr := sl.next()
		copy(nr, r)
		nr[len(r)] = sc.machine.EvalAt(fp, rows, i)
		out = append(out, nr)
	}
	vectorizedBatchesCtr.Inc()
	return out
}

// applyEvalRuleVec evaluates per-row dynamic rules through their flat
// programs with slab-backed output rows. Rules vary per row, so there
// is nothing to fuse, but the flat machine and slab still remove the
// per-row recursion and row allocation.
func (st *compiledOp) applyEvalRuleVec(rows []relation.Row, sc *vecScratch) ([]relation.Row, error) {
	out := make([]relation.Row, 0, len(rows))
	if len(rows) == 0 {
		return out, nil
	}
	sl := slab{w: len(st.in.Cols) + 1}
	for i, r := range rows {
		var v relation.Value
		src := r[st.ruleIdx].AsString()
		if src != "" {
			prog, err := st.rules.get(src)
			if err != nil {
				return nil, fmt.Errorf("engine: row rule %q: %w", src, err)
			}
			v = sc.machine.EvalAt(prog.Flatten(), rows, i)
		}
		nr := sl.next()
		copy(nr, r)
		nr[len(r)] = v
		out = append(out, nr)
	}
	vectorizedBatchesCtr.Inc()
	return out, nil
}
