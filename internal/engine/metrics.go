package engine

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"ivnt/internal/relation"
	"ivnt/internal/telemetry"
)

// Metric families registered on the process-wide telemetry registry.
// These are the single source of truth behind engine.Stats: executors
// feed them as work happens, and Stats values returned from RunStage
// are snapshots assembled from the same counters, never from ad-hoc
// read-modify-write on shared structs.
var (
	opSecondsVec = telemetry.Default().HistogramVec(
		"engine_op_seconds",
		"Wall time of one operator application over one partition, by operator kind.",
		telemetry.DurationBuckets, "op")
	taskSecondsVec = telemetry.Default().HistogramVec(
		"task_seconds",
		"End-to-end latency of one task (one partition through one stage), by executor kind.",
		telemetry.DurationBuckets, "executor")
	stageSecondsVec = telemetry.Default().HistogramVec(
		"engine_stage_seconds",
		"Wall time of one RunStage call, by executor kind.",
		telemetry.DurationBuckets, "executor")
	rowsInVec = telemetry.Default().CounterVec(
		"engine_rows_in_total", "Rows entering executed stages.", "executor")
	rowsOutVec = telemetry.Default().CounterVec(
		"engine_rows_out_total", "Rows produced by executed stages.", "executor")
	stagesVec = telemetry.Default().CounterVec(
		"engine_stages_total", "Stage executions.", "executor")

	// vectorizedBatchesCtr counts batches processed by the vectorized
	// kernels (fused runs, the batch join, and the whole-partition
	// window/rule kernels). The cluster tests read it to prove remote
	// executors run the vectorized path.
	vectorizedBatchesCtr = telemetry.Default().Counter(
		"engine_vectorized_batches_total",
		"Row batches processed by the vectorized execution kernels.")
	fusedStepsVec = telemetry.Default().CounterVec(
		"engine_fused_steps_total",
		"Operators executed as part of a fused vectorized run, by operator kind.",
		"op")
	// runSkipRowsCtr counts filter evaluations avoided by run skipping:
	// selected rows whose referenced cells were bitwise-identical to the
	// previous row's, so the previous verdict was reused.
	runSkipRowsCtr = telemetry.Default().Counter(
		"engine_runskip_rows_total",
		"Fused filter evaluations skipped by reusing the verdict of a bitwise-identical row.")

	// Spill families: how often governed operators took the external
	// path and how much they wrote. Labels are pre-registered for every
	// governed operator (spillOps) so /metrics exposes the full matrix
	// before any pressure occurs; VerifySpillMetrics gates that in
	// `make vet-metrics`.
	mSpills = telemetry.Default().CounterVec(
		"engine_spills_total",
		"Governed operator executions that degraded to the external (spill-to-disk) path, by operator.",
		"op")
	mSpillBytes = telemetry.Default().CounterVec(
		"engine_spill_bytes_total",
		"Bytes written to spill run files, by operator.",
		"op")

	// opHist pre-resolves one histogram per operator kind so the hot
	// apply path does no map lookup or key join. Filling it for every
	// kind up front also guarantees /metrics exposes the full per-op
	// latency family before any work runs — which is the invariant
	// `make vet-metrics` (VerifyOpMetrics) enforces.
	opHist [NumOpKinds]*telemetry.Histogram
	// fusedStepsCtr is the same pre-registration for the fused-step
	// counters, also enforced by VerifyOpMetrics.
	fusedStepsCtr [NumOpKinds]*telemetry.Counter
)

// spillOps lists every governed operator label the spill families must
// carry from process start.
var spillOps = []string{"sortwithin", "sortglobal", "partialagg", "finalagg"}

func init() {
	for k := 0; k < NumOpKinds; k++ {
		opHist[k] = opSecondsVec.With(OpKind(k).String())
		fusedStepsCtr[k] = fusedStepsVec.With(OpKind(k).String())
	}
	for _, op := range spillOps {
		mSpills.With(op)
		mSpillBytes.With(op)
	}
}

// ObserveOp records one operator application into the per-kind latency
// histogram. Unknown kinds (possible only via corrupt wire input) are
// dropped rather than allowed to panic.
func ObserveOp(k OpKind, d time.Duration) {
	if int(k) < len(opHist) {
		opHist[k].ObserveDuration(d)
	}
}

// ObserveTask records the end-to-end latency of one task for the given
// executor kind ("local" or "cluster").
func ObserveTask(executor string, d time.Duration) {
	taskSecondsVec.With(executor).ObserveDuration(d)
}

// ObserveStage records a finished RunStage into the stage-level
// families.
func ObserveStage(executor string, st Stats) {
	stageSecondsVec.With(executor).ObserveDuration(st.Wall)
	rowsInVec.With(executor).Add(int64(st.RowsIn))
	rowsOutVec.With(executor).Add(int64(st.RowsOut))
	stagesVec.With(executor).Inc()
}

// VerifyOpMetrics checks that every operator kind has a human-readable
// name and a registered engine_op_seconds series. It is the runtime
// twin of the oracle's compile-time exhaustiveness pin: adding an
// OpKind without a String() case or outside the init pre-registration
// fails `make vet-metrics` (cmd/vetmetrics) and CI.
func VerifyOpMetrics() error {
	registered := make(map[string]bool)
	for _, lv := range opSecondsVec.LabelValues() {
		if len(lv) == 1 {
			registered[lv[0]] = true
		}
	}
	fused := make(map[string]bool)
	for _, lv := range fusedStepsVec.LabelValues() {
		if len(lv) == 1 {
			fused[lv[0]] = true
		}
	}
	for k := 0; k < NumOpKinds; k++ {
		name := OpKind(k).String()
		if strings.HasPrefix(name, "op(") {
			return fmt.Errorf("OpKind %d has no String() case (prints as %q); name it and it will gain a latency series", k, name)
		}
		if !registered[name] {
			return fmt.Errorf("OpKind %q has no engine_op_seconds{op=%q} series registered", name, name)
		}
		if !fused[name] {
			return fmt.Errorf("OpKind %q has no engine_fused_steps_total{op=%q} series registered", name, name)
		}
	}
	return nil
}

// VerifySpillMetrics checks that every governed operator has its
// engine_spills_total and engine_spill_bytes_total series registered
// up front, like VerifyOpMetrics does for the per-op latency family.
// Part of the `make vet-metrics` catalogue gate.
func VerifySpillMetrics() error {
	for _, vec := range []struct {
		name string
		v    *telemetry.CounterVec
	}{
		{"engine_spills_total", mSpills},
		{"engine_spill_bytes_total", mSpillBytes},
	} {
		registered := make(map[string]bool)
		for _, lv := range vec.v.LabelValues() {
			if len(lv) == 1 {
				registered[lv[0]] = true
			}
		}
		for _, op := range spillOps {
			if !registered[op] {
				return fmt.Errorf("governed operator %q has no %s{op=%q} series registered", op, vec.name, op)
			}
		}
	}
	return nil
}

// ApplyInstrumented runs the pipeline over one partition exactly like
// Apply while timing each operator into engine_op_seconds. Executors
// use this; Apply stays unobserved for the differential oracle and for
// microbenchmarks that must not measure clock reads. On the vectorized
// path a fused run is one timed pass: each constituent operator kind
// is observed with the run's duration.
func (p *StagePipeline) ApplyInstrumented(part []relation.Row) ([]relation.Row, error) {
	if Vectorize.Load() {
		return p.applyVec(part, true)
	}
	rows := part
	for i := range p.steps {
		t0 := time.Now()
		out, err := p.steps[i].apply(rows)
		ObserveOp(p.steps[i].desc.Kind, time.Since(t0))
		if err != nil {
			return nil, err
		}
		rows = out
	}
	return rows, nil
}

// StatsCollector accumulates one stage run's Stats through atomics, so
// any number of worker goroutines, connection slots, and concurrent
// snapshot readers can touch it without a lock. Snapshot assembles the
// familiar Stats view; all fields are integer counts or nanosecond
// sums, so snapshots of a quiesced collector are bit-identical to what
// sequential accumulation would have produced.
type StatsCollector struct {
	RowsIn, RowsOut, Partitions, Tasks, Retries atomic.Int64
	Reconnects, Speculative, DeadlineHits       atomic.Int64
	BytesSent, BytesRecv, StagesShipped         atomic.Int64
	WallNs, EncodeNs, DecodeNs                  atomic.Int64
	AdmissionDeferrals                          atomic.Int64
	ShufflePartitions, ShuffleBytesPushed       atomic.Int64
	ShuffleBarrierNs                            atomic.Int64
}

// NewStatsCollector returns an empty collector.
func NewStatsCollector() *StatsCollector { return &StatsCollector{} }

// Snapshot returns the current totals as a Stats value. Safe to call
// while writers are active; each field is individually consistent.
func (c *StatsCollector) Snapshot() Stats {
	return Stats{
		RowsIn:        int(c.RowsIn.Load()),
		RowsOut:       int(c.RowsOut.Load()),
		Partitions:    int(c.Partitions.Load()),
		Wall:          time.Duration(c.WallNs.Load()),
		Tasks:         int(c.Tasks.Load()),
		Retries:       int(c.Retries.Load()),
		Reconnects:    int(c.Reconnects.Load()),
		Speculative:   int(c.Speculative.Load()),
		DeadlineHits:  int(c.DeadlineHits.Load()),
		BytesSent:     c.BytesSent.Load(),
		BytesRecv:     c.BytesRecv.Load(),
		StagesShipped:      int(c.StagesShipped.Load()),
		EncodeWall:         time.Duration(c.EncodeNs.Load()),
		DecodeWall:         time.Duration(c.DecodeNs.Load()),
		AdmissionDeferrals: int(c.AdmissionDeferrals.Load()),
		ShufflePartitions:  int(c.ShufflePartitions.Load()),
		ShuffleBytesPushed: c.ShuffleBytesPushed.Load(),
		ShuffleBarrierWall: time.Duration(c.ShuffleBarrierNs.Load()),
	}
}

// AddStats folds a finished Stats value into the collector.
func (c *StatsCollector) AddStats(s Stats) {
	c.RowsIn.Add(int64(s.RowsIn))
	c.RowsOut.Add(int64(s.RowsOut))
	c.Partitions.Add(int64(s.Partitions))
	c.WallNs.Add(int64(s.Wall))
	c.Tasks.Add(int64(s.Tasks))
	c.Retries.Add(int64(s.Retries))
	c.Reconnects.Add(int64(s.Reconnects))
	c.Speculative.Add(int64(s.Speculative))
	c.DeadlineHits.Add(int64(s.DeadlineHits))
	c.BytesSent.Add(s.BytesSent)
	c.BytesRecv.Add(s.BytesRecv)
	c.StagesShipped.Add(int64(s.StagesShipped))
	c.EncodeNs.Add(int64(s.EncodeWall))
	c.DecodeNs.Add(int64(s.DecodeWall))
	c.AdmissionDeferrals.Add(int64(s.AdmissionDeferrals))
	c.ShufflePartitions.Add(int64(s.ShufflePartitions))
	c.ShuffleBytesPushed.Add(s.ShuffleBytesPushed)
	c.ShuffleBarrierNs.Add(int64(s.ShuffleBarrierWall))
}
