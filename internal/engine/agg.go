package engine

import (
	"context"
	"fmt"
	"math"
	"sort"

	"ivnt/internal/memgov"
	"ivnt/internal/relation"
)

// AggFunc enumerates the supported aggregation functions. Aggregations
// are the "aggregation operation" flavour of constraint functions f in
// Sec. 4.1 and back the transition-graph counting in Sec. 4.4.
type AggFunc uint8

// Supported aggregation functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggMin
	AggMax
	AggMean
	AggFirst
	AggLast
)

// String returns the function name.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggMean:
		return "mean"
	case AggFirst:
		return "first"
	case AggLast:
		return "last"
	default:
		return fmt.Sprintf("agg(%d)", uint8(f))
	}
}

// AggSpec is one output aggregate: Fn applied to column Col, emitted as
// column As.
type AggSpec struct {
	Fn  AggFunc
	Col string // ignored for AggCount
	As  string
}

// Aggregate groups rel by the key columns and computes the aggregates.
// Output rows are ordered by the group keys, so results are
// deterministic regardless of input partitioning.
func Aggregate(rel *relation.Relation, groupBy []string, aggs []AggSpec) (*relation.Relation, error) {
	keyIdx := make([]int, len(groupBy))
	for i, c := range groupBy {
		j := rel.Schema.Index(c)
		if j < 0 {
			return nil, fmt.Errorf("engine: aggregate: no group column %q", c)
		}
		keyIdx[i] = j
	}
	aggIdx := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Fn == AggCount {
			aggIdx[i] = -1
			continue
		}
		j := rel.Schema.Index(a.Col)
		if j < 0 {
			return nil, fmt.Errorf("engine: aggregate: no column %q for %s", a.Col, a.Fn)
		}
		aggIdx[i] = j
	}

	type accum struct {
		key    relation.Row
		count  int64
		sums   []float64
		mins   []relation.Value
		maxs   []relation.Value
		firsts []relation.Value
		lasts  []relation.Value
		ns     []int64
	}
	groups := map[string]*accum{}
	var order []string
	for _, p := range rel.Partitions {
		for _, r := range p {
			kb := make([]byte, 0, 32)
			for _, ki := range keyIdx {
				kb = append(kb, r[ki].AsString()...)
				kb = append(kb, 0)
			}
			k := string(kb)
			acc, ok := groups[k]
			if !ok {
				key := make(relation.Row, len(keyIdx))
				for i, ki := range keyIdx {
					key[i] = r[ki]
				}
				acc = &accum{
					key:    key,
					sums:   make([]float64, len(aggs)),
					mins:   make([]relation.Value, len(aggs)),
					maxs:   make([]relation.Value, len(aggs)),
					firsts: make([]relation.Value, len(aggs)),
					lasts:  make([]relation.Value, len(aggs)),
					ns:     make([]int64, len(aggs)),
				}
				groups[k] = acc
				order = append(order, k)
			}
			acc.count++
			for i, a := range aggs {
				if a.Fn == AggCount {
					continue
				}
				v := r[aggIdx[i]]
				if v.IsNull() {
					continue
				}
				if acc.ns[i] == 0 {
					acc.mins[i], acc.maxs[i], acc.firsts[i] = v, v, v
				} else {
					if v.Compare(acc.mins[i]) < 0 {
						acc.mins[i] = v
					}
					if v.Compare(acc.maxs[i]) > 0 {
						acc.maxs[i] = v
					}
				}
				acc.lasts[i] = v
				acc.sums[i] += v.AsFloat()
				acc.ns[i]++
			}
		}
	}
	sort.Strings(order)

	cols := make([]relation.Column, 0, len(groupBy)+len(aggs))
	for i, g := range groupBy {
		cols = append(cols, relation.Column{Name: g, Kind: rel.Schema.Cols[keyIdx[i]].Kind})
	}
	for _, a := range aggs {
		kind := relation.KindFloat
		if a.Fn == AggCount {
			kind = relation.KindInt
		}
		cols = append(cols, relation.Column{Name: a.As, Kind: kind})
	}
	out := relation.New(relation.NewSchema(cols...))
	for _, k := range order {
		acc := groups[k]
		row := make(relation.Row, 0, len(cols))
		row = append(row, acc.key...)
		for i, a := range aggs {
			switch a.Fn {
			case AggCount:
				row = append(row, relation.Int(acc.count))
			case AggSum:
				row = append(row, relation.Float(acc.sums[i]))
			case AggMin:
				row = append(row, orNull(acc.ns[i] > 0, acc.mins[i]))
			case AggMax:
				row = append(row, orNull(acc.ns[i] > 0, acc.maxs[i]))
			case AggMean:
				if acc.ns[i] == 0 {
					row = append(row, relation.Null())
				} else {
					row = append(row, relation.Float(acc.sums[i]/float64(acc.ns[i])))
				}
			case AggFirst:
				row = append(row, orNull(acc.ns[i] > 0, acc.firsts[i]))
			case AggLast:
				row = append(row, orNull(acc.ns[i] > 0, acc.lasts[i]))
			case aggCountNonNull:
				row = append(row, relation.Int(acc.ns[i]))
			default:
				row = append(row, relation.Null())
			}
		}
		out.Append(row)
	}
	return out, nil
}

func orNull(ok bool, v relation.Value) relation.Value {
	if !ok {
		return relation.Null()
	}
	return v
}

// ColumnFloats extracts a column as float64s, skipping nulls; a helper
// for statistics over materialized relations.
func ColumnFloats(rel *relation.Relation, col string) ([]float64, error) {
	idx := rel.Schema.Index(col)
	if idx < 0 {
		return nil, fmt.Errorf("engine: no column %q", col)
	}
	out := make([]float64, 0, rel.NumRows())
	for _, p := range rel.Partitions {
		for _, r := range p {
			if r[idx].IsNull() {
				continue
			}
			f := r[idx].AsFloat()
			if math.IsNaN(f) {
				continue
			}
			out = append(out, f)
		}
	}
	return out, nil
}

// partialAggSchema computes the partial-aggregate row shape: group
// columns followed by the partial columns of each aggregate. Mean
// expands into "<as>__sum" and "<as>__n" so partials stay mergeable.
func partialAggSchema(in relation.Schema, groupBy []string, aggs []AggSpec) (relation.Schema, error) {
	if len(groupBy) == 0 {
		return relation.Schema{}, fmt.Errorf("partial aggregation needs group columns")
	}
	cols := make([]relation.Column, 0, len(groupBy)+len(aggs)+1)
	for _, g := range groupBy {
		i := in.Index(g)
		if i < 0 {
			return relation.Schema{}, fmt.Errorf("no group column %q", g)
		}
		cols = append(cols, in.Cols[i])
	}
	for _, a := range aggs {
		switch a.Fn {
		case AggFirst, AggLast:
			return relation.Schema{}, fmt.Errorf("%s is order-dependent and not distributable", a.Fn)
		case AggCount:
			cols = append(cols, relation.Column{Name: a.As, Kind: relation.KindInt})
		case AggMean:
			cols = append(cols,
				relation.Column{Name: a.As + "__sum", Kind: relation.KindFloat},
				relation.Column{Name: a.As + "__n", Kind: relation.KindInt})
		default:
			if !in.Has(a.Col) {
				return relation.Schema{}, fmt.Errorf("no column %q for %s", a.Col, a.Fn)
			}
			kind := relation.KindFloat
			if a.Fn == AggMin || a.Fn == AggMax {
				kind = in.Cols[in.Index(a.Col)].Kind
			}
			cols = append(cols, relation.Column{Name: a.As, Kind: kind})
		}
	}
	return relation.NewSchema(cols...), nil
}

// expandForPartial rewrites the aggregate list into mergeable partial
// specs (mean → sum + count).
func expandForPartial(aggs []AggSpec) []AggSpec {
	out := make([]AggSpec, 0, len(aggs)+1)
	for _, a := range aggs {
		if a.Fn == AggMean {
			out = append(out,
				AggSpec{Fn: AggSum, Col: a.Col, As: a.As + "__sum"},
				AggSpec{Fn: aggCountNonNull, Col: a.Col, As: a.As + "__n"})
			continue
		}
		out = append(out, a)
	}
	return out
}

// aggCountNonNull counts non-null values of a column (internal partial
// for mean; Aggregate handles it like count but skips nulls).
const aggCountNonNull AggFunc = 200

// applyPartialAgg runs the map-side aggregation over one partition.
func applyPartialAgg(in relation.Schema, rows []relation.Row, groupBy []string, aggs []AggSpec) ([]relation.Row, error) {
	part := relation.FromRows(in, rows)
	out, err := Aggregate(part, groupBy, expandForPartial(aggs))
	if err != nil {
		return nil, err
	}
	return out.Rows(), nil
}

// AggregateDistributed computes a group-by over rel using the executor:
// a partial-aggregation stage runs on every partition (possibly on
// remote executors), then the partials merge on the driver. Results
// match Aggregate exactly and come back ordered by group key.
func AggregateDistributed(ctx context.Context, exec Executor, rel *relation.Relation, groupBy []string, aggs []AggSpec) (*relation.Relation, error) {
	partials, _, err := exec.RunStage(ctx, rel, []OpDesc{PartialAgg(groupBy, aggs)})
	if err != nil {
		return nil, err
	}
	return MergePartials(partials, groupBy, aggs)
}

// MergePartials combines partial-aggregate rows (the output of an
// OpPartialAgg stage, any partitioning) into final results. Exported so
// the differential harness can reduce partition-dependent partials to a
// partition-independent relation before comparing executors.
//
// The merge is governed: when the accumulator working set does not fit
// the process memory budget, it degrades to grace hash aggregation
// (shard the partials through disk, merge each shard in memory — see
// spill.go) with bitwise-identical results.
func MergePartials(partials *relation.Relation, groupBy []string, aggs []AggSpec) (*relation.Relation, error) {
	g := memgov.Default()
	if !DebugForceSpill.Load() {
		if g.Unlimited() {
			return mergePartialParts(partials.Schema, partials.Partitions, groupBy, aggs)
		}
		var need int64
		for _, p := range partials.Partitions {
			need += RowsFootprint(p)
		}
		if gr := g.TryGrant(2 * need); gr != nil {
			defer gr.Release()
			return mergePartialParts(partials.Schema, partials.Partitions, groupBy, aggs)
		}
	}
	return externalMergePartials(g, partials, groupBy, aggs)
}

// externalMergePartials is the spilling FinalAggregate path: shard the
// partial rows by group key, reduce each shard with the in-memory
// merge, and stitch the key-ordered shard outputs back together.
func externalMergePartials(g *memgov.Governor, partials *relation.Relation, groupBy []string, aggs []AggSpec) (*relation.Relation, error) {
	s := partials.Schema
	keyIdx := make([]int, len(groupBy))
	for i, c := range groupBy {
		ki := s.Index(c)
		if ki < 0 {
			return nil, fmt.Errorf("engine: merge partials: no group column %q", c)
		}
		keyIdx[i] = ki
	}
	// An empty merge yields the output schema without touching disk,
	// and serves as the schema template for the spilled result.
	empty, err := mergePartialParts(s, nil, groupBy, aggs)
	if err != nil {
		return nil, err
	}
	merged, err := externalGroupReduce(g, s, partials.Partitions, keyIdx, len(groupBy),
		func(shard []relation.Row) ([]relation.Row, error) {
			out, rerr := mergePartialParts(s, [][]relation.Row{shard}, groupBy, aggs)
			if rerr != nil {
				return nil, rerr
			}
			return out.Rows(), nil
		}, "finalagg")
	if err != nil {
		return nil, err
	}
	return relation.FromRows(empty.Schema, merged), nil
}

// mergePartialParts is the in-memory merge core over raw partition row
// slices, shared by the direct and the spilling path.
func mergePartialParts(s relation.Schema, parts [][]relation.Row, groupBy []string, aggs []AggSpec) (*relation.Relation, error) {
	keyIdx := make([]int, len(groupBy))
	for i, g := range groupBy {
		keyIdx[i] = s.MustIndex(g)
	}
	type accum struct {
		key    relation.Row
		counts []int64
		sums   []float64
		mins   []relation.Value
		maxs   []relation.Value
		seen   []bool
	}
	groups := map[string]*accum{}
	var order []string
	for _, p := range parts {
		for _, r := range p {
			kb := make([]byte, 0, 32)
			for _, ki := range keyIdx {
				kb = append(kb, r[ki].AsString()...)
				kb = append(kb, 0)
			}
			k := string(kb)
			acc, ok := groups[k]
			if !ok {
				key := make(relation.Row, len(keyIdx))
				for i, ki := range keyIdx {
					key[i] = r[ki]
				}
				acc = &accum{
					key:    key,
					counts: make([]int64, len(aggs)*2),
					sums:   make([]float64, len(aggs)*2),
					mins:   make([]relation.Value, len(aggs)),
					maxs:   make([]relation.Value, len(aggs)),
					seen:   make([]bool, len(aggs)),
				}
				groups[k] = acc
				order = append(order, k)
			}
			for i, a := range aggs {
				switch a.Fn {
				case AggCount:
					acc.counts[i*2] += r[s.MustIndex(a.As)].AsInt()
				case AggSum:
					acc.sums[i*2] += r[s.MustIndex(a.As)].AsFloat()
				case AggMean:
					acc.sums[i*2] += r[s.MustIndex(a.As+"__sum")].AsFloat()
					acc.counts[i*2+1] += r[s.MustIndex(a.As+"__n")].AsInt()
				case AggMin, AggMax:
					v := r[s.MustIndex(a.As)]
					if v.IsNull() {
						continue
					}
					if !acc.seen[i] {
						acc.mins[i], acc.maxs[i], acc.seen[i] = v, v, true
						continue
					}
					if v.Compare(acc.mins[i]) < 0 {
						acc.mins[i] = v
					}
					if v.Compare(acc.maxs[i]) > 0 {
						acc.maxs[i] = v
					}
				default:
					return nil, fmt.Errorf("engine: %s not mergeable", a.Fn)
				}
			}
		}
	}
	sort.Strings(order)

	cols := make([]relation.Column, 0, len(groupBy)+len(aggs))
	for i, g := range groupBy {
		cols = append(cols, relation.Column{Name: g, Kind: s.Cols[keyIdx[i]].Kind})
	}
	for _, a := range aggs {
		kind := relation.KindFloat
		if a.Fn == AggCount {
			kind = relation.KindInt
		}
		cols = append(cols, relation.Column{Name: a.As, Kind: kind})
	}
	out := relation.New(relation.NewSchema(cols...))
	for _, k := range order {
		acc := groups[k]
		row := make(relation.Row, 0, len(cols))
		row = append(row, acc.key...)
		for i, a := range aggs {
			switch a.Fn {
			case AggCount:
				row = append(row, relation.Int(acc.counts[i*2]))
			case AggSum:
				row = append(row, relation.Float(acc.sums[i*2]))
			case AggMean:
				if acc.counts[i*2+1] == 0 {
					row = append(row, relation.Null())
				} else {
					row = append(row, relation.Float(acc.sums[i*2]/float64(acc.counts[i*2+1])))
				}
			case AggMin:
				row = append(row, orNull(acc.seen[i], acc.mins[i]))
			case AggMax:
				row = append(row, orNull(acc.seen[i], acc.maxs[i]))
			}
		}
		out.Append(row)
	}
	return out, nil
}
