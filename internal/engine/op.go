// Package engine implements the distributable tabular batch engine the
// framework runs on — the substitute for Apache Spark in the paper's
// evaluation. It provides the relational operator algebra Algorithm 1 is
// written in (σ filter, ⋈ broadcast hash join, F row-wise map, run
// deduplication, projection, per-partition sort) as *serializable
// operator descriptors*, so the same stage pipeline executes on the
// in-process parallel executor or on remote TCP executors
// (internal/cluster) unchanged.
//
// Operators are deliberately data-driven: every parameter is plain data
// (expression source text, rule tables, column names), never a Go
// closure, which is what makes plans shippable across the wire — the
// analogue of the paper's "one-time parameterization" being submitted to
// a Big Data cluster.
package engine

import (
	"fmt"
	"sync"

	"ivnt/internal/expr"
	"ivnt/internal/relation"
)

// OpKind enumerates the narrow (per-partition) operators.
type OpKind uint8

// Narrow operator kinds. All of them preserve partitioning, which is why
// a stage pipeline of them runs embarrassingly parallel.
const (
	// OpFilter keeps rows whose predicate expression is true (σ).
	OpFilter OpKind = iota
	// OpProject keeps the named columns, in order (π).
	OpProject
	// OpAddColumn appends a computed column (F, row-wise map). The
	// expression may use window functions; history is partition-local.
	OpAddColumn
	// OpEvalRule appends a column computed by evaluating, per row, the
	// expression *text found in another column*. This is the u₂
	// interpretation step: after joining K_pre with U_comb, every row
	// carries its own translation rule.
	OpEvalRule
	// OpBroadcastJoin inner-joins the stream with a small broadcast
	// table on equal keys (⋈). The table rides along inside the
	// descriptor, exactly like a Spark broadcast variable.
	OpBroadcastJoin
	// OpDedupConsecutive drops a row when all its value columns equal
	// the previous row's (run-length deduplication of cyclically
	// repeated signal instances, Sec. 5.1).
	OpDedupConsecutive
	// OpSortWithin sorts each partition by the given columns.
	OpSortWithin
	// OpPartialAgg computes per-partition partial aggregates (the
	// map-side combine of a distributed group-by); the driver merges
	// the partials. AggFirst/AggLast are order-dependent and therefore
	// not distributable.
	OpPartialAgg
	// OpShuffleExchange is the map side of a hash-partitioned shuffle:
	// it reorders the partition's rows into contiguous runs grouped by
	// ascending hash bucket of the key columns (bucket = Row.Bucket of
	// Cols over Parts), preserving input order within each bucket and
	// leaving the schema unchanged. On the cluster this is where map
	// tasks cut their output into the per-executor partitions they
	// stream to peers; as a narrow operator it stays a deterministic,
	// locally testable kernel (see shuffle.go and docs/SHUFFLE.md).
	OpShuffleExchange

	// NumOpKinds is the number of operator kinds; it must stay
	// immediately after the last kind so iota counts it. The
	// differential-testing oracle (internal/oracle) pins itself to this
	// value with a compile-time assertion: adding a kind here without a
	// reference implementation there fails the build (see
	// docs/TESTING.md).
	NumOpKinds = int(iota)
)

// String returns the operator name.
func (k OpKind) String() string {
	switch k {
	case OpFilter:
		return "filter"
	case OpProject:
		return "project"
	case OpAddColumn:
		return "addcolumn"
	case OpEvalRule:
		return "evalrule"
	case OpBroadcastJoin:
		return "broadcastjoin"
	case OpDedupConsecutive:
		return "dedupconsecutive"
	case OpSortWithin:
		return "sortwithin"
	case OpPartialAgg:
		return "partialagg"
	case OpShuffleExchange:
		return "shuffleexchange"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// JoinSpec carries a small broadcast table and the equi-join keys.
type JoinSpec struct {
	Schema    relation.Schema
	Rows      []relation.Row
	LeftKeys  []string
	RightKeys []string
	// TableHash is the content fingerprint of (Schema, Rows), set by
	// the cluster driver when it ships the stage with the table rows
	// stripped (protocol v3 sends each broadcast table once per
	// connection, keyed by this hash). The engine itself never reads
	// it; Rows must be materialized before NewStagePipeline runs.
	TableHash uint64
}

// OpDesc is one serializable operator. Only the fields relevant to Kind
// are set; the flat shape keeps gob encoding trivial.
type OpDesc struct {
	Kind OpKind

	// Expr is the predicate (OpFilter) or column expression
	// (OpAddColumn).
	Expr string
	// Col is the output column name (OpAddColumn, OpEvalRule).
	Col string
	// ColKind is the advisory kind of the output column.
	ColKind relation.Kind
	// RuleCol names the column holding per-row expression text
	// (OpEvalRule).
	RuleCol string
	// Cols are the projection columns (OpProject), the sort keys
	// (OpSortWithin) or the compared value columns (OpDedupConsecutive).
	Cols []string
	// Join is the broadcast join spec (OpBroadcastJoin).
	Join *JoinSpec
	// GroupBy and Aggs parameterize OpPartialAgg.
	GroupBy []string
	Aggs    []AggSpec
	// Parts is the shuffle fan-out (OpShuffleExchange): rows are hashed
	// on Cols into this many output partitions.
	Parts int
}

// Filter builds a σ descriptor.
func Filter(predicate string) OpDesc { return OpDesc{Kind: OpFilter, Expr: predicate} }

// Project builds a π descriptor.
func Project(cols ...string) OpDesc { return OpDesc{Kind: OpProject, Cols: cols} }

// AddColumn builds a computed-column descriptor.
func AddColumn(name string, kind relation.Kind, exprSrc string) OpDesc {
	return OpDesc{Kind: OpAddColumn, Col: name, ColKind: kind, Expr: exprSrc}
}

// EvalRule builds a per-row dynamic rule evaluation descriptor.
func EvalRule(outCol string, kind relation.Kind, ruleCol string) OpDesc {
	return OpDesc{Kind: OpEvalRule, Col: outCol, ColKind: kind, RuleCol: ruleCol}
}

// BroadcastJoin builds an inner equi-join with a small table. Key
// columns of the right side are not duplicated in the output schema.
func BroadcastJoin(small *relation.Relation, leftKeys, rightKeys []string) OpDesc {
	return OpDesc{Kind: OpBroadcastJoin, Join: &JoinSpec{
		Schema:    small.Schema,
		Rows:      small.Rows(),
		LeftKeys:  leftKeys,
		RightKeys: rightKeys,
	}}
}

// DedupConsecutive builds a run-deduplication descriptor over the given
// value columns.
func DedupConsecutive(valueCols ...string) OpDesc {
	return OpDesc{Kind: OpDedupConsecutive, Cols: valueCols}
}

// SortWithin builds a per-partition sort descriptor.
func SortWithin(cols ...string) OpDesc { return OpDesc{Kind: OpSortWithin, Cols: cols} }

// PartialAgg builds a map-side partial aggregation descriptor.
func PartialAgg(groupBy []string, aggs []AggSpec) OpDesc {
	return OpDesc{Kind: OpPartialAgg, GroupBy: groupBy, Aggs: aggs}
}

// ShuffleExchange builds a hash-repartition descriptor: rows are
// grouped into parts contiguous bucket runs by the hash of the key
// columns. Null keys hash deterministically into one bucket
// (relation.Row.Bucket is the single bucket authority).
func ShuffleExchange(parts int, keys ...string) OpDesc {
	return OpDesc{Kind: OpShuffleExchange, Parts: parts, Cols: keys}
}

// OutputSchema computes the schema produced by applying ops to a schema,
// validating column references and compiling every expression once.
func OutputSchema(in relation.Schema, ops []OpDesc) (relation.Schema, error) {
	s := in
	for i, op := range ops {
		var err error
		s, err = opSchema(s, op)
		if err != nil {
			return relation.Schema{}, fmt.Errorf("engine: op %d (%s): %w", i, op.Kind, err)
		}
	}
	return s, nil
}

func opSchema(in relation.Schema, op OpDesc) (relation.Schema, error) {
	switch op.Kind {
	case OpFilter:
		if _, err := expr.Compile(op.Expr, in); err != nil {
			return relation.Schema{}, err
		}
		return in, nil
	case OpProject:
		return in.Project(op.Cols...)
	case OpAddColumn:
		if in.Has(op.Col) {
			return relation.Schema{}, fmt.Errorf("column %q already exists", op.Col)
		}
		if _, err := expr.Compile(op.Expr, in); err != nil {
			return relation.Schema{}, err
		}
		return in.Append(relation.Column{Name: op.Col, Kind: op.ColKind}), nil
	case OpEvalRule:
		if !in.Has(op.RuleCol) {
			return relation.Schema{}, fmt.Errorf("rule column %q missing", op.RuleCol)
		}
		if in.Has(op.Col) {
			return relation.Schema{}, fmt.Errorf("column %q already exists", op.Col)
		}
		return in.Append(relation.Column{Name: op.Col, Kind: op.ColKind}), nil
	case OpBroadcastJoin:
		j := op.Join
		if j == nil {
			return relation.Schema{}, fmt.Errorf("nil join spec")
		}
		if len(j.LeftKeys) == 0 || len(j.LeftKeys) != len(j.RightKeys) {
			return relation.Schema{}, fmt.Errorf("join keys mismatch: %v vs %v", j.LeftKeys, j.RightKeys)
		}
		for _, k := range j.LeftKeys {
			if !in.Has(k) {
				return relation.Schema{}, fmt.Errorf("left key %q missing", k)
			}
		}
		rightKeySet := map[string]bool{}
		for _, k := range j.RightKeys {
			if !j.Schema.Has(k) {
				return relation.Schema{}, fmt.Errorf("right key %q missing", k)
			}
			rightKeySet[k] = true
		}
		out := in
		for _, c := range j.Schema.Cols {
			if rightKeySet[c.Name] {
				continue
			}
			if out.Has(c.Name) {
				return relation.Schema{}, fmt.Errorf("join output column %q collides", c.Name)
			}
			out = out.Append(c)
		}
		return out, nil
	case OpDedupConsecutive, OpSortWithin:
		for _, c := range op.Cols {
			if !in.Has(c) {
				return relation.Schema{}, fmt.Errorf("column %q missing", c)
			}
		}
		return in, nil
	case OpPartialAgg:
		return partialAggSchema(in, op.GroupBy, op.Aggs)
	case OpShuffleExchange:
		if op.Parts < 1 {
			return relation.Schema{}, fmt.Errorf("shuffle fan-out %d < 1", op.Parts)
		}
		if len(op.Cols) == 0 {
			return relation.Schema{}, fmt.Errorf("shuffle exchange needs key columns")
		}
		for _, c := range op.Cols {
			if !in.Has(c) {
				return relation.Schema{}, fmt.Errorf("shuffle key %q missing", c)
			}
		}
		return in, nil
	default:
		return relation.Schema{}, fmt.Errorf("unknown op kind %v", op.Kind)
	}
}

// ruleShardCount shards the rule cache by source-text hash. Every
// worker goroutine of a stage hits the cache once per row, and after
// warm-up virtually every hit is a read, so shards use RWMutexes: the
// hot path is a shared read lock on 1/16th of the keyspace instead of
// the single global mutex that serialized all workers (see
// BenchmarkEvalRuleParallel).
const ruleShardCount = 16

// ruleCache caches compiled per-row rules by source text so that
// OpEvalRule compiles each distinct rule once per stage rather than
// once per row. A compilation error is cached too — interpretation
// aborts on the first bad rule, but speculative copies of the same
// task must not pay repeated compile attempts.
type ruleCache struct {
	schema relation.Schema
	shards [ruleShardCount]ruleShard
}

type ruleShard struct {
	mu    sync.RWMutex
	progs map[string]*expr.Program
	errs  map[string]error
}

func newRuleCache(s relation.Schema) *ruleCache {
	c := &ruleCache{schema: s}
	for i := range c.shards {
		c.shards[i].progs = map[string]*expr.Program{}
		c.shards[i].errs = map[string]error{}
	}
	return c
}

// ruleShardFor hashes the rule source (FNV-1a) onto a shard.
func (c *ruleCache) shardFor(src string) *ruleShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(src); i++ {
		h = (h ^ uint64(src[i])) * 1099511628211
	}
	return &c.shards[h%ruleShardCount]
}

func (c *ruleCache) get(src string) (*expr.Program, error) {
	sh := c.shardFor(src)
	sh.mu.RLock()
	p, okP := sh.progs[src]
	err, okE := sh.errs[src]
	sh.mu.RUnlock()
	if okP {
		return p, nil
	}
	if okE {
		return nil, err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if p, ok := sh.progs[src]; ok {
		return p, nil
	}
	if err, ok := sh.errs[src]; ok {
		return nil, err
	}
	p, err = expr.Compile(src, c.schema)
	if err != nil {
		sh.errs[src] = err
		return nil, err
	}
	sh.progs[src] = p
	return p, nil
}
