// Shuffle exchange kernels: the engine-side half of the hash-partitioned
// shuffle (docs/SHUFFLE.md). OpShuffleExchange is a narrow operator —
// it reorders one partition's rows into contiguous runs grouped by
// ascending key-hash bucket — so the oracle, the row path and the
// vectorized path can all be held bitwise equal on it. The cluster
// layer (internal/cluster) builds the wide exchange on top: map tasks
// run a pipeline ending in this split, then stream each bucket to the
// executor that owns the corresponding output partition.
//
// Bucket assignment is delegated to relation.Row.Bucket, the single
// authority shared with Relation.PartitionByKey, so null keys land in
// exactly one deterministic bucket on every layer (the null-key
// regression tests pin this).
package engine

import (
	"sync/atomic"

	"ivnt/internal/relation"
	"ivnt/internal/telemetry"
)

// Shuffle metric families, pre-registered at init so /metrics carries
// them from process start (`make vet-metrics` checks the catalogue via
// VerifyShuffleMetrics).
var (
	mShuffleSplits = telemetry.Default().Counter(
		"engine_shuffle_splits_total",
		"ShuffleSplit invocations (one per map-side partition routed through a shuffle exchange).")
	mShuffleRows = telemetry.Default().Counter(
		"engine_shuffle_rows_total",
		"Rows routed into hash buckets by shuffle exchanges.")
)

// debugShuffleBucket, when set, rewrites every computed shuffle bucket.
// The difftest wrong-hash-bucket detection test injects a misrouting
// bug here and asserts the shuffle invariant catches it. Atomic so
// tests can arm it while executor worker goroutines run splits.
var debugShuffleBucket atomic.Pointer[func(bucket, parts int) int]

// SetDebugShuffleBucket installs (or, with nil, removes) the bucket
// mutation hook.
func SetDebugShuffleBucket(f func(bucket, parts int) int) {
	if f == nil {
		debugShuffleBucket.Store(nil)
		return
	}
	debugShuffleBucket.Store(&f)
}

// shuffleBucket computes the output bucket for one row, applying the
// debug mutation hook when armed.
func shuffleBucket(r relation.Row, parts int, keyIdx []int) int {
	b := r.Bucket(parts, keyIdx...)
	if f := debugShuffleBucket.Load(); f != nil {
		b = (*f)(b, parts)
	}
	return b
}

// ShuffleSplit cuts one partition's rows into parts buckets by the
// hash of the key cells, preserving input order within each bucket.
// Bucket i of the result is output partition i's contribution from
// this input partition; concatenating the buckets of every input
// partition in partition order reproduces Relation.PartitionByKey
// bitwise — the invariant difftest holds the cluster exchange to.
func ShuffleSplit(rows []relation.Row, keyIdx []int, parts int) [][]relation.Row {
	if parts < 1 {
		parts = 1
	}
	mShuffleSplits.Inc()
	mShuffleRows.Add(int64(len(rows)))
	out := make([][]relation.Row, parts)
	if parts == 1 {
		out[0] = rows
		return out
	}
	for _, r := range rows {
		b := shuffleBucket(r, parts, keyIdx)
		out[b] = append(out[b], r)
	}
	return out
}

// applyShuffleExchange is the narrow OpShuffleExchange kernel: the
// partition's rows regrouped as contiguous ascending-bucket runs.
func (st *compiledOp) applyShuffleExchange(rows []relation.Row) ([]relation.Row, error) {
	split := ShuffleSplit(rows, st.colIdx, st.desc.Parts)
	if len(split) == 1 {
		return rows, nil
	}
	out := make([]relation.Row, 0, len(rows))
	for _, b := range split {
		out = append(out, b...)
	}
	return out, nil
}

// MergeByGroupKey merges key-ordered, key-disjoint aggregation outputs
// (one slice per shuffle partition, each produced by MergePartials or
// Aggregate) into one globally key-ordered row slice — the same n-way
// minimum walk the grace-hash spill path uses, exported so the shuffle
// aggregation plan reproduces engine.Aggregate's global key order
// bitwise from per-partition finals. nkey is the number of leading
// group-key columns.
func MergeByGroupKey(parts [][]relation.Row, nkey int) []relation.Row {
	type cursor struct {
		rows []relation.Row
		pos  int
		key  []byte
	}
	outIdx := keyRange(nkey)
	cs := make([]*cursor, 0, len(parts))
	total := 0
	for _, p := range parts {
		if len(p) == 0 {
			continue
		}
		c := &cursor{rows: p}
		c.key = groupKeyAppend(nil, p[0], outIdx)
		cs = append(cs, c)
		total += len(p)
	}
	merged := make([]relation.Row, 0, total)
	for len(cs) > 0 {
		min := 0
		for i := 1; i < len(cs); i++ {
			if string(cs[i].key) < string(cs[min].key) {
				min = i
			}
		}
		c := cs[min]
		merged = append(merged, c.rows[c.pos])
		c.pos++
		if c.pos == len(c.rows) {
			cs = append(cs[:min], cs[min+1:]...)
		} else {
			c.key = groupKeyAppend(c.key[:0], c.rows[c.pos], outIdx)
		}
	}
	return merged
}

// VerifyShuffleMetrics checks the engine_shuffle_* catalogue is
// registered with the expected types — part of the `make vet-metrics`
// gate alongside VerifyOpMetrics/VerifySpillMetrics.
func VerifyShuffleMetrics() error {
	return telemetry.VerifyFamilies(map[string]string{
		"engine_shuffle_splits_total": telemetry.TypeCounter,
		"engine_shuffle_rows_total":   telemetry.TypeCounter,
	})
}
