package engine

import (
	"context"
	"fmt"
	"testing"

	"ivnt/internal/relation"
)

// BenchmarkBroadcastJoinStage measures the full broadcast-join +
// rule-eval + project stage on the local executor — the per-partition
// work a cluster task performs, and the stage the wire benchmark ships.
func BenchmarkBroadcastJoinStage(b *testing.B) {
	const nRows, nParts, nTable = 20000, 16, 256
	streamSchema := relation.NewSchema(
		relation.Column{Name: "t", Kind: relation.KindFloat},
		relation.Column{Name: "mid", Kind: relation.KindInt},
		relation.Column{Name: "x", Kind: relation.KindInt},
	)
	rows := make([]relation.Row, nRows)
	for i := range rows {
		rows[i] = relation.Row{
			relation.Float(float64(i) * 0.01),
			relation.Int(int64(i % nTable)),
			relation.Int(int64(i % 4096)),
		}
	}
	rel := relation.FromRows(streamSchema, rows).Repartition(nParts)

	tableSchema := relation.NewSchema(
		relation.Column{Name: "mid", Kind: relation.KindInt},
		relation.Column{Name: "rule", Kind: relation.KindString},
	)
	trows := make([]relation.Row, nTable)
	for i := range trows {
		trows[i] = relation.Row{
			relation.Int(int64(i)),
			relation.Str(fmt.Sprintf("x * %d + %d", i%13+1, i%29)),
		}
	}
	small := relation.FromRows(tableSchema, trows)
	ops := []OpDesc{
		BroadcastJoin(small, []string{"mid"}, []string{"mid"}),
		EvalRule("v", relation.KindInt, "rule"),
		Project("t", "mid", "v"),
	}
	exec := NewLocal(0)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := exec.RunStage(ctx, rel, ops); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(nRows*b.N)/b.Elapsed().Seconds(), "rows/s")
}
