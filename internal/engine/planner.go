// Physical plan selection for distributed joins and aggregations
// (docs/SHUFFLE.md). Two plans exist for each:
//
//   - Broadcast: ship the build side (join) or all partials
//     (aggregation) to one place. O(executors × build) bytes on the
//     wire for joins, and the build table must fit one executor's
//     memory budget.
//   - Shuffle: hash-repartition on the key so each output partition is
//     computed where its rows land. O(data) bytes on the wire, and no
//     single node ever holds more than its partitions.
//
// The planner picks by a size estimate: builds (or inputs) under the
// broadcast threshold broadcast, everything else shuffles — provided
// the executor can (implements ShuffleExecutor); otherwise broadcast is
// the only plan. Both plans are bitwise-equivalent on the same
// partitioning, which is the metamorphic invariant the differential
// harness holds them to (internal/difftest).
package engine

import (
	"context"
	"fmt"

	"ivnt/internal/memgov"
	"ivnt/internal/relation"
)

// ShuffleExecutor is an Executor that can hash-repartition relations
// across its workers — the capability the shuffle plans need. Local
// implements it in-process; internal/cluster.Driver implements it with
// executor-to-executor partition streaming (protocol v4).
type ShuffleExecutor interface {
	Executor
	// ShuffleMaterialize applies ops to rel and hash-partitions the
	// result on keys into parts partitions. Partition p of the result
	// is bitwise identical to result.PartitionByKey(parts, keys...)
	// partition p, whatever the executor topology.
	ShuffleMaterialize(ctx context.Context, rel *relation.Relation, ops []OpDesc, keys []string, parts int) (*relation.Relation, Stats, error)
	// ShuffleJoin repartitions both sides on their join keys and joins
	// each partition pair locally with the broadcast-join kernel.
	ShuffleJoin(ctx context.Context, left, right *relation.Relation, leftKeys, rightKeys []string, parts int) (*relation.Relation, Stats, error)
	// ShuffleAggregate computes a group-by via partial aggregation,
	// repartitioning the partials on the group key and finalizing each
	// partition locally. The result is a single partition in global
	// group-key order, bitwise identical to AggregateDistributed's.
	ShuffleAggregate(ctx context.Context, rel *relation.Relation, groupBy []string, aggs []AggSpec, parts int) (*relation.Relation, Stats, error)
	// DefaultShuffleParts is the fan-out used when the plan config does
	// not pick one.
	DefaultShuffleParts() int
}

// Interface conformance: Local is a ShuffleExecutor.
var _ ShuffleExecutor = (*Local)(nil)

// DefaultShuffleParts implements ShuffleExecutor.
func (l *Local) DefaultShuffleParts() int {
	p := l.workers()
	if p < 2 {
		p = 2
	}
	return p
}

// localShuffle hash-partitions rel into parts partitions on keyIdx.
// Output partition p concatenates each input partition's bucket-p rows
// in input-partition order — PartitionByKey's layout, built through
// ShuffleSplit so the difftest bucket-mutation hook sees this path too.
func localShuffle(rel *relation.Relation, keyIdx []int, parts int) *relation.Relation {
	outParts := make([][]relation.Row, parts)
	for _, in := range rel.Partitions {
		for b, rows := range ShuffleSplit(in, keyIdx, parts) {
			outParts[b] = append(outParts[b], rows...)
		}
	}
	return &relation.Relation{Schema: rel.Schema, Partitions: outParts}
}

// resolveKeys maps key column names to indexes in s.
func resolveKeys(s relation.Schema, keys []string) ([]int, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("engine: shuffle needs key columns")
	}
	idx := make([]int, len(keys))
	for i, k := range keys {
		idx[i] = s.Index(k)
		if idx[i] < 0 {
			return nil, fmt.Errorf("engine: shuffle key %q not in schema", k)
		}
	}
	return idx, nil
}

// ShuffleMaterialize implements ShuffleExecutor in-process.
func (l *Local) ShuffleMaterialize(ctx context.Context, rel *relation.Relation, ops []OpDesc, keys []string, parts int) (*relation.Relation, Stats, error) {
	if parts < 1 {
		parts = l.DefaultShuffleParts()
	}
	out, st, err := l.RunStage(ctx, rel, ops)
	if err != nil {
		return nil, Stats{}, err
	}
	keyIdx, err := resolveKeys(out.Schema, keys)
	if err != nil {
		return nil, Stats{}, err
	}
	shuffled := localShuffle(out, keyIdx, parts)
	st.Partitions = parts
	st.ShufflePartitions += parts
	return shuffled, st, nil
}

// ShuffleJoin implements ShuffleExecutor in-process: both sides
// repartition on their keys, then each partition joins against its
// build partition with the same broadcast-join kernel the cluster
// reduce uses — keeping the two executors bitwise interchangeable.
func (l *Local) ShuffleJoin(ctx context.Context, left, right *relation.Relation, leftKeys, rightKeys []string, parts int) (*relation.Relation, Stats, error) {
	if parts < 1 {
		parts = l.DefaultShuffleParts()
	}
	if len(leftKeys) == 0 || len(leftKeys) != len(rightKeys) {
		return nil, Stats{}, fmt.Errorf("engine: shuffle join keys mismatch: %v vs %v", leftKeys, rightKeys)
	}
	lIdx, err := resolveKeys(left.Schema, leftKeys)
	if err != nil {
		return nil, Stats{}, err
	}
	rIdx, err := resolveKeys(right.Schema, rightKeys)
	if err != nil {
		return nil, Stats{}, err
	}
	shL := localShuffle(left, lIdx, parts)
	shR := localShuffle(right, rIdx, parts)
	outParts := make([][]relation.Row, parts)
	var outSchema relation.Schema
	var tasks int
	for p := 0; p < parts; p++ {
		if ctx.Err() != nil {
			return nil, Stats{}, ctx.Err()
		}
		build := &relation.Relation{Schema: right.Schema, Partitions: [][]relation.Row{shR.Partitions[p]}}
		pipe, _, err := CompileStage(left.Schema, []OpDesc{BroadcastJoin(build, leftKeys, rightKeys)})
		if err != nil {
			return nil, Stats{}, err
		}
		rows, err := pipe.ApplyContained(shL.Partitions[p])
		if err != nil {
			return nil, Stats{}, err
		}
		outParts[p] = rows
		outSchema = pipe.OutputSchema()
		tasks++
	}
	out := &relation.Relation{Schema: outSchema, Partitions: outParts}
	st := Stats{
		RowsIn:            left.NumRows() + right.NumRows(),
		RowsOut:           out.NumRows(),
		Partitions:        parts,
		Tasks:             tasks,
		ShufflePartitions: parts,
	}
	return out, st, nil
}

// ShuffleAggregate implements ShuffleExecutor in-process: partials from
// a PartialAgg stage repartition on the group key, each partition
// merges to finals locally, and the key-disjoint finals merge back into
// global key order.
func (l *Local) ShuffleAggregate(ctx context.Context, rel *relation.Relation, groupBy []string, aggs []AggSpec, parts int) (*relation.Relation, Stats, error) {
	if parts < 1 {
		parts = l.DefaultShuffleParts()
	}
	partials, st, err := l.RunStage(ctx, rel, []OpDesc{PartialAgg(groupBy, aggs)})
	if err != nil {
		return nil, Stats{}, err
	}
	keyIdx, err := resolveKeys(partials.Schema, groupBy)
	if err != nil {
		return nil, Stats{}, err
	}
	shuffled := localShuffle(partials, keyIdx, parts)
	finalParts := make([][]relation.Row, parts)
	var finalSchema relation.Schema
	for p := 0; p < parts; p++ {
		if ctx.Err() != nil {
			return nil, Stats{}, ctx.Err()
		}
		one := &relation.Relation{Schema: partials.Schema, Partitions: [][]relation.Row{shuffled.Partitions[p]}}
		final, err := MergePartials(one, groupBy, aggs)
		if err != nil {
			return nil, Stats{}, err
		}
		finalParts[p] = final.Rows()
		finalSchema = final.Schema
	}
	merged := MergeByGroupKey(finalParts, len(groupBy))
	out := &relation.Relation{Schema: finalSchema, Partitions: [][]relation.Row{merged}}
	st.RowsOut = out.NumRows()
	st.Partitions = parts
	st.ShufflePartitions += parts
	st.Tasks += parts
	return out, st, nil
}

// PlanKind names the physical plan DistributedJoin/DistributedAggregate
// selected.
type PlanKind int

const (
	// PlanBroadcast ships the build side (or all partials) whole.
	PlanBroadcast PlanKind = iota
	// PlanShuffle hash-repartitions on the key.
	PlanShuffle
)

func (k PlanKind) String() string {
	switch k {
	case PlanBroadcast:
		return "broadcast"
	case PlanShuffle:
		return "shuffle"
	default:
		return fmt.Sprintf("PlanKind(%d)", int(k))
	}
}

// PlanConfig tunes physical plan selection.
type PlanConfig struct {
	// BroadcastThreshold is the build-side (join) or input-side
	// (aggregation) footprint in bytes above which the planner prefers
	// a shuffle plan. 0 derives it from the memory budget: a quarter of
	// the process budget when one is set (the broadcast build table must
	// fit every executor next to its working set), else 64 MiB.
	BroadcastThreshold int64
	// Parts is the shuffle fan-out; 0 asks the executor for its
	// default.
	Parts int
}

func (c PlanConfig) threshold() int64 {
	if c.BroadcastThreshold > 0 {
		return c.BroadcastThreshold
	}
	if g := memgov.Default(); !g.Unlimited() {
		return g.Budget() / 4
	}
	return 64 << 20
}

// footprint estimates a relation's resident size.
func footprint(rel *relation.Relation) int64 {
	var n int64
	for _, p := range rel.Partitions {
		n += RowsFootprint(p)
	}
	return n
}

// DistributedJoin joins left with right on the given keys, picking the
// physical plan by build-side size: small builds broadcast, large ones
// shuffle (when exec supports it). Returns the plan taken so callers
// (bench, difftest) can assert planning decisions.
func DistributedJoin(ctx context.Context, exec Executor, left, right *relation.Relation, leftKeys, rightKeys []string, cfg PlanConfig) (*relation.Relation, PlanKind, Stats, error) {
	se, canShuffle := exec.(ShuffleExecutor)
	if canShuffle && footprint(right) > cfg.threshold() {
		out, st, err := se.ShuffleJoin(ctx, left, right, leftKeys, rightKeys, cfg.Parts)
		return out, PlanShuffle, st, err
	}
	out, st, err := exec.RunStage(ctx, left, []OpDesc{BroadcastJoin(right, leftKeys, rightKeys)})
	return out, PlanBroadcast, st, err
}

// DistributedAggregate computes a group-by, picking the physical plan
// by input size: the broadcast plan funnels every partial through the
// driver's MergePartials, which is fine until the partials themselves
// are big (high key cardinality); past the threshold the shuffle plan
// spreads finalization over the executors. The input footprint is the
// proxy for partial size — pessimistic for low-cardinality keys, where
// the funnel is cheap anyway.
func DistributedAggregate(ctx context.Context, exec Executor, rel *relation.Relation, groupBy []string, aggs []AggSpec, cfg PlanConfig) (*relation.Relation, PlanKind, Stats, error) {
	se, canShuffle := exec.(ShuffleExecutor)
	if canShuffle && footprint(rel) > cfg.threshold() {
		out, st, err := se.ShuffleAggregate(ctx, rel, groupBy, aggs, cfg.Parts)
		return out, PlanShuffle, st, err
	}
	partials, st, err := exec.RunStage(ctx, rel, []OpDesc{PartialAgg(groupBy, aggs)})
	if err != nil {
		return nil, PlanBroadcast, Stats{}, err
	}
	out, err := MergePartials(partials, groupBy, aggs)
	if err != nil {
		return nil, PlanBroadcast, Stats{}, err
	}
	st.RowsOut = out.NumRows()
	return out, PlanBroadcast, st, nil
}
