package engine

import (
	"sort"
	"testing"

	"ivnt/internal/relation"
)

// The acceptance bar for the vectorized path is set against these
// benches: the fused Filter→Project→AddColumn workload must run at
// ≥2x fewer ns/row and ≥4x fewer allocs/row than the row path.
// cmd/benchmark -exp pipeline records the same workloads into the
// "pipeline" section of BENCH_engine.json.

func benchPipeline(b *testing.B, ops []OpDesc) *StagePipeline {
	b.Helper()
	pipe, err := NewStagePipeline(vecTestSchema(), ops)
	if err != nil {
		b.Fatal(err)
	}
	return pipe
}

func fusedBenchOps() []OpDesc {
	return []OpDesc{
		Filter("mid != 2 && byteat(l, 0) < 6"),
		Project("t", "mid", "l", "v"),
		AddColumn("b0", relation.KindInt, "byteat(l, 0)"),
		AddColumn("x", relation.KindFloat, "coalesce(v, 0.0) * 0.5 + b0"),
	}
}

func BenchmarkFusedPipelineRows(b *testing.B) {
	pipe := benchPipeline(b, fusedBenchOps())
	part := vecTestRows(8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.ApplyRows(part); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFusedPipelineVec(b *testing.B) {
	pipe := benchPipeline(b, fusedBenchOps())
	part := vecTestRows(8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.ApplyVectorized(part); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBroadcastJoinRows(b *testing.B) {
	pipe := benchPipeline(b, []OpDesc{BroadcastJoin(vecJoinTable(), []string{"mid"}, []string{"rmid"})})
	part := vecTestRows(8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.ApplyRows(part); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBroadcastJoinVec(b *testing.B) {
	pipe := benchPipeline(b, []OpDesc{BroadcastJoin(vecJoinTable(), []string{"mid"}, []string{"rmid"})})
	part := vecTestRows(8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.ApplyVectorized(part); err != nil {
			b.Fatal(err)
		}
	}
}

// naiveSortLess is the pre-optimization comparator shape: the
// per-column loop lived inside the sort.SliceStable closure, paying
// the colIdx range setup on every comparison.
func naiveSortLess(cp []relation.Row, colIdx []int) func(a, b int) bool {
	return func(a, b int) bool {
		for _, ci := range colIdx {
			if c := cp[a][ci].Compare(cp[b][ci]); c != 0 {
				return c < 0
			}
		}
		return false
	}
}

func BenchmarkSortWithinNaive(b *testing.B) {
	part := vecTestRows(8192)
	colIdx := []int{2, 0} // mid, t
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := make([]relation.Row, len(part))
		copy(cp, part)
		sort.SliceStable(cp, naiveSortLess(cp, colIdx))
	}
}

func BenchmarkSortWithinCompiled(b *testing.B) {
	part := vecTestRows(8192)
	less := compileComparator([]int{2, 0})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := make([]relation.Row, len(part))
		copy(cp, part)
		sort.SliceStable(cp, less(cp))
	}
}
