package engine

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"ivnt/internal/relation"
	"ivnt/internal/telemetry"
)

func TestVerifyOpMetrics(t *testing.T) {
	if err := VerifyOpMetrics(); err != nil {
		t.Fatalf("VerifyOpMetrics: %v", err)
	}
}

func TestOpMetricsPreRegistered(t *testing.T) {
	// Every op kind must expose a latency series before any stage runs,
	// so a fresh process's /metrics already shows the full catalogue.
	var sb strings.Builder
	if err := telemetry.Default().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for k := 0; k < NumOpKinds; k++ {
		want := `engine_op_seconds_count{op="` + OpKind(k).String() + `"}`
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %s:\n%s", want, out)
		}
	}
}

func TestLocalRunStageFeedsRegistry(t *testing.T) {
	reg := telemetry.Default()
	beforeTasks := reg.HistogramData("task_seconds")
	beforeFilter := opHist[OpFilter].Snapshot()

	rel := testRelation(t, 64, 4)
	ex := NewLocal(2)
	out, st, err := ex.RunStage(context.Background(), rel, []OpDesc{Filter("mid >= 0")})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != st.RowsOut {
		t.Fatalf("rows out mismatch: %d vs %d", out.NumRows(), st.RowsOut)
	}
	dTasks := reg.HistogramData("task_seconds").Sub(beforeTasks)
	if dTasks.Count < 4 {
		t.Fatalf("task_seconds delta = %d, want >= 4 (one per partition)", dTasks.Count)
	}
	dFilter := opHist[OpFilter].Snapshot().Sub(beforeFilter)
	if dFilter.Count < 4 {
		t.Fatalf("engine_op_seconds{op=filter} delta = %d, want >= 4", dFilter.Count)
	}
}

func testRelation(t *testing.T, rows, parts int) *relation.Relation {
	t.Helper()
	sch := relation.Schema{Cols: []relation.Column{
		{Name: "ts", Kind: relation.KindInt},
		{Name: "mid", Kind: relation.KindInt},
	}}
	rel := &relation.Relation{Schema: sch, Partitions: make([][]relation.Row, parts)}
	for i := 0; i < rows; i++ {
		p := i % parts
		rel.Partitions[p] = append(rel.Partitions[p],
			relation.Row{relation.Int(int64(i)), relation.Int(int64(i % 7))})
	}
	return rel
}

func TestStatsCollectorSnapshotMatchesAdd(t *testing.T) {
	samples := []Stats{
		{RowsIn: 10, RowsOut: 7, Partitions: 2, Wall: 5 * time.Millisecond, Tasks: 2},
		{RowsIn: 3, RowsOut: 3, Retries: 1, Reconnects: 2, Speculative: 1,
			DeadlineHits: 1, BytesSent: 100, BytesRecv: 250, StagesShipped: 3,
			EncodeWall: time.Millisecond, DecodeWall: 2 * time.Millisecond},
	}
	var want Stats
	c := NewStatsCollector()
	for _, s := range samples {
		want.Add(s)
		c.AddStats(s)
	}
	if got := c.Snapshot(); got != want {
		t.Fatalf("collector snapshot diverged from sequential Add:\n got %+v\nwant %+v", got, want)
	}
}

// TestStatsCollectorConcurrent hammers one collector from many
// goroutines while snapshotting — the race-safety contract (meaningful
// under -race; make race runs the full module).
func TestStatsCollectorConcurrent(t *testing.T) {
	c := NewStatsCollector()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Tasks.Add(1)
				c.RowsIn.Add(3)
				c.WallNs.Add(int64(time.Microsecond))
				if i%100 == 0 {
					_ = c.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	got := c.Snapshot()
	if got.Tasks != 8*500 || got.RowsIn != 8*500*3 {
		t.Fatalf("lost updates: %+v", got)
	}
}
