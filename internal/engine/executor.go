package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ivnt/internal/memgov"
	"ivnt/internal/relation"
)

// Stats aggregates execution counters for one stage run. The bench
// harness reads these to report reduction ratios (Ablation A3).
type Stats struct {
	RowsIn     int
	RowsOut    int
	Partitions int
	Wall       time.Duration
	Tasks      int
	Retries    int
	// Fault-tolerance counters (populated by the cluster driver):
	// Reconnects counts re-established executor connections,
	// Speculative counts straggler tasks re-dispatched speculatively,
	// DeadlineHits counts task round trips that exceeded the per-task
	// deadline.
	Reconnects   int
	Speculative  int
	DeadlineHits int
	// Wire counters (populated by the cluster driver, protocol v3):
	// BytesSent/BytesRecv are bytes written to / read from executor
	// connections (handshakes, stage shipments, tasks, results);
	// StagesShipped counts stageMsg sends (once per stage per
	// connection, plus re-sends after reconnects); EncodeWall and
	// DecodeWall accumulate driver-side columnar codec time.
	BytesSent     int64
	BytesRecv     int64
	StagesShipped int
	EncodeWall    time.Duration
	DecodeWall    time.Duration
	// AdmissionDeferrals counts dispatch pauses the cluster driver
	// inserted because an executor reported memory pressure in its
	// result frames (admission control; see docs/MEMORY.md).
	AdmissionDeferrals int
	// Shuffle counters (populated by the cluster driver's shuffle
	// scheduler, protocol v4; see docs/SHUFFLE.md): ShufflePartitions
	// counts shuffle output partitions materialized across executors,
	// ShuffleBytesPushed counts executor-to-executor partition payload
	// bytes (peer streams never cross the driver, so BytesSent/Recv
	// cannot see them), ShuffleBarrierWall accumulates driver time
	// spent in barrier rounds waiting for shuffles to materialize.
	ShufflePartitions  int
	ShuffleBytesPushed int64
	ShuffleBarrierWall time.Duration
}

// Add accumulates another stage's stats.
func (s *Stats) Add(o Stats) {
	s.RowsIn += o.RowsIn
	s.RowsOut += o.RowsOut
	s.Partitions += o.Partitions
	s.Wall += o.Wall
	s.Tasks += o.Tasks
	s.Retries += o.Retries
	s.Reconnects += o.Reconnects
	s.Speculative += o.Speculative
	s.DeadlineHits += o.DeadlineHits
	s.BytesSent += o.BytesSent
	s.BytesRecv += o.BytesRecv
	s.StagesShipped += o.StagesShipped
	s.EncodeWall += o.EncodeWall
	s.DecodeWall += o.DecodeWall
	s.AdmissionDeferrals += o.AdmissionDeferrals
	s.ShufflePartitions += o.ShufflePartitions
	s.ShuffleBytesPushed += o.ShuffleBytesPushed
	s.ShuffleBarrierWall += o.ShuffleBarrierWall
}

// Executor runs a stage — a narrow-operator pipeline over every
// partition of a relation — somewhere: in-process (Local) or on a TCP
// cluster (internal/cluster.Driver).
type Executor interface {
	// RunStage applies ops to each partition of rel and returns the
	// resulting relation with the same partition count and order.
	RunStage(ctx context.Context, rel *relation.Relation, ops []OpDesc) (*relation.Relation, Stats, error)
	// Name identifies the executor for reports.
	Name() string
}

// Local is the in-process data-parallel executor: a worker pool
// processes partitions concurrently, the moral equivalent of running
// Spark in local[N] mode.
type Local struct {
	// Workers is the pool size; 0 means GOMAXPROCS.
	Workers int
}

// NewLocal returns a Local executor with the given worker count.
func NewLocal(workers int) *Local { return &Local{Workers: workers} }

// Name implements Executor.
func (l *Local) Name() string { return fmt.Sprintf("local[%d]", l.workers()) }

func (l *Local) workers() int {
	if l.Workers > 0 {
		return l.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// RunStage implements Executor.
func (l *Local) RunStage(ctx context.Context, rel *relation.Relation, ops []OpDesc) (*relation.Relation, Stats, error) {
	start := time.Now()
	// The cached-compile path: repeated stages (per-journey extraction
	// loops, retried plans) compile — and build their broadcast hash
	// tables — once per distinct stage, not once per RunStage call.
	pipe, _, err := CompileStage(rel.Schema, ops)
	if err != nil {
		return nil, Stats{}, err
	}
	nParts := len(rel.Partitions)
	outParts := make([][]relation.Row, nParts)
	errs := make([]error, nParts)

	workers := l.workers()
	if workers > nParts {
		workers = nParts
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pi := range next {
				if cctx.Err() != nil {
					errs[pi] = cctx.Err()
					continue
				}
				t0 := time.Now()
				// Input partitions are already resident; record their
				// footprint with the governor so spilling operators see
				// honest pressure, and contain panics so one poisoned
				// partition fails the stage instead of the process.
				var gr *memgov.Grant
				if g := memgov.Default(); !g.Unlimited() {
					gr = g.ForceGrant(RowsFootprint(rel.Partitions[pi]))
				}
				out, err := pipe.ApplyContained(rel.Partitions[pi])
				gr.Release()
				ObserveTask("local", time.Since(t0))
				if err != nil {
					errs[pi] = err
					cancel()
					continue
				}
				outParts[pi] = out
			}
		}()
	}
	for pi := 0; pi < nParts; pi++ {
		next <- pi
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, Stats{}, err
		}
	}
	out := &relation.Relation{Schema: pipe.OutputSchema(), Partitions: outParts}
	st := Stats{
		RowsIn:     rel.NumRows(),
		RowsOut:    out.NumRows(),
		Partitions: nParts,
		Wall:       time.Since(start),
		Tasks:      nParts,
	}
	ObserveStage("local", st)
	return out, st, nil
}
