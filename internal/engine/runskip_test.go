package engine

import (
	"testing"

	"ivnt/internal/relation"
	"ivnt/internal/telemetry"
)

// rleTestRows builds a partition shaped like a decoded low-cardinality
// trace: every column piecewise-constant in long runs, with a null run
// in v.
func rleTestRows(n int) []relation.Row {
	rows := make([]relation.Row, n)
	for i := range rows {
		v := relation.Float(float64((i / 96) % 3))
		if (i/48)%5 == 4 {
			v = relation.Null()
		}
		rows[i] = relation.Row{
			relation.Float(float64(i) * 0.01),
			relation.Str([]string{"drive", "park"}[(i/128)%2]),
			relation.Int(int64((i / 64) % 4)),
			relation.Bytes([]byte{byte((i / 32) % 8)}),
			v,
		}
	}
	return rows
}

// TestRunSkipMatchesEval: with run skipping on, fused filters over
// RLE-shaped data must produce bitwise-identical output to both the
// skip-free vectorized path and the row-at-a-time reference — while
// actually skipping evaluations.
func TestRunSkipMatchesEval(t *testing.T) {
	sch := vecTestSchema()
	pipelines := map[string][]OpDesc{
		"filter-const-col":   {Filter("mid != 2")},
		"filter-chain":       {Filter("mid != 2"), Filter("bid == 'drive'")},
		"filter-null-runs":   {Filter("coalesce(v, 1.0) > 0.0")},
		"filter-then-addcol": {Filter("mid < 3"), AddColumn("b0", relation.KindInt, "byteat(l, 0)"), Project("t", "mid", "b0")},
	}
	for name, ops := range pipelines {
		t.Run(name, func(t *testing.T) {
			pipe, err := NewStagePipeline(sch, ops)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{0, 1, 200, batchSize + 100} {
				part := rleTestRows(n)
				want, err := pipe.ApplyRows(part)
				if err != nil {
					t.Fatal(err)
				}

				RunSkip.Store(false)
				plain, err := pipe.ApplyVectorized(part)
				RunSkip.Store(true)
				if err != nil {
					t.Fatal(err)
				}
				before := telemetry.Default().CounterValue("engine_runskip_rows_total")
				skipped, err := pipe.ApplyVectorized(part)
				if err != nil {
					t.Fatal(err)
				}
				delta := telemetry.Default().CounterValue("engine_runskip_rows_total") - before

				if !rowsBitEqual(skipped, want) || !rowsBitEqual(plain, want) {
					t.Fatalf("n=%d: run-skip output diverges (skip=%d plain=%d want=%d rows)",
						n, len(skipped), len(plain), len(want))
				}
				// Long runs mean the vast majority of rows reuse a verdict.
				if n >= 200 && delta < int64(n/2) {
					t.Fatalf("n=%d: only %d evaluations skipped", n, delta)
				}
				if n <= 1 && delta != 0 {
					t.Fatalf("n=%d: %d skips on a run-free partition", n, delta)
				}
			}
		})
	}
}

// TestRunSkipDisabledForScratchRefs: a filter reading a computed column
// must not run-skip — the scratch cells are not covered by the row
// comparison — and the planner encodes that as a nil skipCols.
func TestRunSkipDisabledForScratchRefs(t *testing.T) {
	sch := vecTestSchema()
	pipe, err := NewStagePipeline(sch, []OpDesc{
		AddColumn("b0", relation.KindInt, "byteat(l, 0)"),
		Filter("b0 < 4"),
	})
	if err != nil {
		t.Fatal(err)
	}
	var filters, skippable int
	for _, seg := range pipe.vec {
		if seg.fused == nil {
			continue
		}
		for _, st := range seg.fused.steps {
			if st.dst < 0 {
				filters++
				if st.skipCols != nil {
					skippable++
				}
			}
		}
	}
	if filters != 1 || skippable != 0 {
		t.Fatalf("filters=%d skippable=%d, want 1 filter with skipping disabled", filters, skippable)
	}

	before := telemetry.Default().CounterValue("engine_runskip_rows_total")
	part := rleTestRows(512)
	want, err := pipe.ApplyRows(part)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pipe.ApplyVectorized(part)
	if err != nil {
		t.Fatal(err)
	}
	if !rowsBitEqual(got, want) {
		t.Fatal("scratch-ref filter diverges from row path")
	}
	if d := telemetry.Default().CounterValue("engine_runskip_rows_total") - before; d != 0 {
		t.Fatalf("%d rows skipped through a scratch-referencing filter", d)
	}
}

// TestSkipColumnsPlan pins the planner side: an input-only filter gets
// exactly the columns it reads, a window filter never fuses at all (and
// so never reaches skipColumns with window code).
func TestSkipColumnsPlan(t *testing.T) {
	sch := vecTestSchema()
	pipe, err := NewStagePipeline(sch, []OpDesc{Filter("mid != 2 && bid == 'drive'")})
	if err != nil {
		t.Fatal(err)
	}
	if len(pipe.vec) != 1 || pipe.vec[0].fused == nil {
		t.Fatal("filter did not fuse")
	}
	got := pipe.vec[0].fused.steps[0].skipCols
	// Columns bid=1, mid=2 in schema order.
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("skipCols = %v, want [1 2]", got)
	}
}
