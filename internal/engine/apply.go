package engine

import (
	"fmt"

	"ivnt/internal/expr"
	"ivnt/internal/relation"
)

// StagePipeline is a validated chain of narrow operators bound to an
// input schema. Building one compiles all static expressions once;
// Apply then runs the chain over one partition. A pipeline is safe for
// concurrent Apply calls from multiple workers.
type StagePipeline struct {
	in    relation.Schema
	out   relation.Schema
	steps []compiledOp
	vec   []vecSegment // vectorized execution plan (see vectorize.go)
}

type compiledOp struct {
	desc OpDesc
	in   relation.Schema // input schema of this step
	out  relation.Schema
	prog *expr.Program // OpFilter, OpAddColumn
	// broadcast hash table for OpBroadcastJoin
	hash     map[uint64]*joinBucket
	rightIdx []int // key column indexes in the broadcast table
	leftIdx  []int
	keepIdx  []int // non-key broadcast columns appended to output
	colIdx   []int // resolved op.Cols
	ruleIdx  int   // OpEvalRule rule column
	rules    *ruleCache
	less     func(cp []relation.Row) func(a, b int) bool // OpSortWithin, precompiled
}

// joinBucket is one build-side hash bucket. uniform means every build
// row in the bucket carries the same key tuple, so a probe row that
// matches the first row matches them all — the batch join kernel then
// skips the per-candidate keysEqual re-checks that only a 64-bit hash
// collision could need.
type joinBucket struct {
	rows    []relation.Row
	uniform bool
}

// NewStagePipeline validates and compiles ops against the input schema.
func NewStagePipeline(in relation.Schema, ops []OpDesc) (*StagePipeline, error) {
	p := &StagePipeline{in: in}
	cur := in
	for i, op := range ops {
		next, err := opSchema(cur, op)
		if err != nil {
			return nil, fmt.Errorf("engine: op %d (%s): %w", i, op.Kind, err)
		}
		st := compiledOp{desc: op, in: cur, out: next, ruleIdx: -1}
		switch op.Kind {
		case OpFilter:
			st.prog, err = expr.Compile(op.Expr, cur)
		case OpAddColumn:
			st.prog, err = expr.Compile(op.Expr, cur)
		case OpEvalRule:
			st.ruleIdx = cur.MustIndex(op.RuleCol)
			st.rules = newRuleCache(cur)
		case OpBroadcastJoin:
			j := op.Join
			st.leftIdx = make([]int, len(j.LeftKeys))
			for k, name := range j.LeftKeys {
				st.leftIdx[k] = cur.MustIndex(name)
			}
			st.rightIdx = make([]int, len(j.RightKeys))
			rightKeySet := map[string]bool{}
			for k, name := range j.RightKeys {
				st.rightIdx[k] = j.Schema.MustIndex(name)
				rightKeySet[name] = true
			}
			for ci, c := range j.Schema.Cols {
				if !rightKeySet[c.Name] {
					st.keepIdx = append(st.keepIdx, ci)
				}
			}
			st.hash = make(map[uint64]*joinBucket, len(j.Rows))
			for _, r := range j.Rows {
				h := r.Hash(st.rightIdx...)
				b := st.hash[h]
				if b == nil {
					b = &joinBucket{uniform: true}
					st.hash[h] = b
				} else if b.uniform && !keysEqual(r, b.rows[0], st.rightIdx, st.rightIdx) {
					b.uniform = false
				}
				b.rows = append(b.rows, r)
			}
		case OpProject, OpDedupConsecutive, OpSortWithin, OpShuffleExchange:
			st.colIdx = make([]int, len(op.Cols))
			for k, name := range op.Cols {
				st.colIdx[k] = cur.MustIndex(name)
			}
			if op.Kind == OpSortWithin {
				st.less = compileComparator(st.colIdx)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("engine: op %d (%s): %w", i, op.Kind, err)
		}
		p.steps = append(p.steps, st)
		cur = next
	}
	p.out = cur
	p.buildVecPlan()
	return p, nil
}

// compileComparator builds the OpSortWithin comparator factory once at
// pipeline compile time, with unrolled shapes for the common one- and
// two-key sorts. The factory closes directly over the row slice being
// sorted, so each sort.SliceStable comparison is a single call with no
// per-comparison column-index loop setup.
func compileComparator(colIdx []int) func(cp []relation.Row) func(a, b int) bool {
	switch len(colIdx) {
	case 0:
		return func([]relation.Row) func(a, b int) bool {
			return func(a, b int) bool { return false }
		}
	case 1:
		c0 := colIdx[0]
		return func(cp []relation.Row) func(a, b int) bool {
			return func(a, b int) bool { return cp[a][c0].Compare(cp[b][c0]) < 0 }
		}
	case 2:
		c0, c1 := colIdx[0], colIdx[1]
		return func(cp []relation.Row) func(a, b int) bool {
			return func(a, b int) bool {
				if c := cp[a][c0].Compare(cp[b][c0]); c != 0 {
					return c < 0
				}
				return cp[a][c1].Compare(cp[b][c1]) < 0
			}
		}
	default:
		idx := colIdx
		return func(cp []relation.Row) func(a, b int) bool {
			return func(a, b int) bool {
				for _, ci := range idx {
					if c := cp[a][ci].Compare(cp[b][ci]); c != 0 {
						return c < 0
					}
				}
				return false
			}
		}
	}
}

// InputSchema returns the schema the pipeline consumes.
func (p *StagePipeline) InputSchema() relation.Schema { return p.in }

// OutputSchema returns the schema the pipeline produces.
func (p *StagePipeline) OutputSchema() relation.Schema { return p.out }

// Apply runs the pipeline over one partition and returns the produced
// rows, on the vectorized path unless the Vectorize toggle is off. The
// input slice is never mutated.
func (p *StagePipeline) Apply(part []relation.Row) ([]relation.Row, error) {
	if Vectorize.Load() {
		return p.applyVec(part, false)
	}
	return p.ApplyRows(part)
}

// ApplyRows runs the pipeline row-at-a-time regardless of the
// Vectorize toggle. This is the reference path the differential
// harness holds the vectorized path bitwise-equal to.
func (p *StagePipeline) ApplyRows(part []relation.Row) ([]relation.Row, error) {
	rows := part
	for i := range p.steps {
		var err error
		rows, err = p.steps[i].apply(rows)
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func (st *compiledOp) apply(rows []relation.Row) ([]relation.Row, error) {
	switch st.desc.Kind {
	case OpFilter:
		out := make([]relation.Row, 0, len(rows))
		env := &expr.RowEnv{Rows: rows}
		for i := range rows {
			env.Idx = i
			if st.prog.EvalBool(env) {
				out = append(out, rows[i])
			}
		}
		return out, nil

	case OpProject:
		out := make([]relation.Row, len(rows))
		for i, r := range rows {
			nr := make(relation.Row, len(st.colIdx))
			for k, ci := range st.colIdx {
				nr[k] = r[ci]
			}
			out[i] = nr
		}
		return out, nil

	case OpAddColumn:
		out := make([]relation.Row, len(rows))
		env := &expr.RowEnv{Rows: rows}
		for i, r := range rows {
			env.Idx = i
			nr := make(relation.Row, len(r)+1)
			copy(nr, r)
			nr[len(r)] = st.prog.Eval(env)
			out[i] = nr
		}
		return out, nil

	case OpEvalRule:
		out := make([]relation.Row, len(rows))
		env := &expr.RowEnv{Rows: rows}
		for i, r := range rows {
			env.Idx = i
			var v relation.Value
			src := r[st.ruleIdx].AsString()
			if src != "" {
				prog, err := st.rules.get(src)
				if err != nil {
					return nil, fmt.Errorf("engine: row rule %q: %w", src, err)
				}
				v = prog.Eval(env)
			}
			nr := make(relation.Row, len(r)+1)
			copy(nr, r)
			nr[len(r)] = v
			out[i] = nr
		}
		return out, nil

	case OpBroadcastJoin:
		var out []relation.Row
		for _, r := range rows {
			h := r.Hash(st.leftIdx...)
			b := st.hash[h]
			if b == nil {
				continue
			}
			for _, cand := range b.rows {
				if !keysEqual(r, cand, st.leftIdx, st.rightIdx) {
					continue
				}
				nr := make(relation.Row, len(r)+len(st.keepIdx))
				copy(nr, r)
				for k, ci := range st.keepIdx {
					nr[len(r)+k] = cand[ci]
				}
				out = append(out, nr)
			}
		}
		return out, nil

	case OpDedupConsecutive:
		out := make([]relation.Row, 0, len(rows))
		for i, r := range rows {
			if i > 0 && sameOn(r, rows[i-1], st.colIdx) {
				continue
			}
			out = append(out, r)
		}
		return out, nil

	case OpSortWithin:
		// Governed: in-memory sort.SliceStable when the working set fits
		// the memory budget, external merge sort otherwise (spill.go).
		return st.applySort(rows)

	case OpPartialAgg:
		// Governed: in-memory hash aggregation when it fits, grace hash
		// aggregation through disk otherwise (spill.go).
		return st.applyAgg(rows)

	case OpShuffleExchange:
		return st.applyShuffleExchange(rows)
	}
	return nil, fmt.Errorf("engine: unknown op kind %v", st.desc.Kind)
}

func keysEqual(l, r relation.Row, li, ri []int) bool {
	for k := range li {
		if !l[li[k]].Equal(r[ri[k]]) {
			return false
		}
	}
	return true
}

func sameOn(a, b relation.Row, idx []int) bool {
	for _, i := range idx {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
