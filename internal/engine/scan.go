// Scan-side predicate pushdown: the bridge between a persistent scan
// source (internal/segstore) and stage execution. The planner folds the
// leading Filter/Project run of a stage into a Pushdown so the source
// can (a) skip decoding columns the stage never touches and (b) prune
// whole segments whose zone maps prove no row can satisfy a pushed
// filter. Pushdown never changes the ops that run: the original stage
// executes unchanged against the scanned relation, so a pruned scan is
// bitwise-equal to full-scan-then-filter by construction (and the
// difftest scan invariant enforces it).
package engine

import (
	"context"
	"fmt"

	"ivnt/internal/expr"
	"ivnt/internal/relation"
)

// Pushdown is the part of a stage a scan source may exploit early.
//
// Filters holds the predicates of the stage's leading Filter ops, in
// plan order. A source may use them only to *prune*: if it can prove no
// row of a segment satisfies some pushed filter, the segment's rows
// never reach the engine (they would all be dropped by that Filter
// anyway). It must never evaluate them row-by-row on surviving
// segments — the stage's own Filter ops still run.
//
// Cols, when non-nil, is the schema-ordered set of columns the stage
// can possibly touch; the source decodes only those. Nil means the
// stage's column usage could not be bounded — decode everything.
type Pushdown struct {
	Filters []string
	Cols    []string
}

// ScanSource is a relation that can be scanned with pushdown. Scan
// returns one partition per stored segment (pruned segments surface as
// empty partitions, keeping partition indexes stable), restricted to
// pd.Cols when non-nil.
type ScanSource interface {
	ScanSchema() relation.Schema
	Scan(ctx context.Context, pd Pushdown) (*relation.Relation, error)
}

// SegmentRef names one stored segment of a scan, so a distributed
// executor can read the segment file itself instead of receiving
// driver-shipped rows. Cols mirrors Pushdown.Cols; Rows is the footer
// row count (for stats, without decoding); Pruned marks segments whose
// zone maps proved the pushed filters unsatisfiable.
type SegmentRef struct {
	Path   string
	Cols   []string
	Rows   int
	Pruned bool
}

// SegmentLister is the optional ScanSource capability behind
// segment-scheduled scans: it exposes the segment files a Pushdown
// resolves to, one SegmentRef per segment in partition order.
type SegmentLister interface {
	Segments(pd Pushdown) ([]SegmentRef, error)
}

// SegmentExecutor is the optional Executor capability for running a
// stage directly from segment files (cluster.Driver implements it by
// shipping paths instead of encoded partitions). refs[i] becomes
// partition i of the stage input; schema is the decoded (possibly
// column-restricted) scan schema every ref resolves to.
type SegmentExecutor interface {
	Executor
	RunSegmentStage(ctx context.Context, refs []SegmentRef, schema relation.Schema, ops []OpDesc) (*relation.Relation, Stats, error)
}

// FoldPushdown derives the Pushdown for a stage over schema s: every
// leading Filter contributes its predicate, and if the leading run
// contains a Project, the scan can be restricted to the union of the
// columns the leading ops mention (later ops only see projected
// columns, so the union bounds the whole stage). Without a leading
// Project the rest of the stage may touch any column and Cols stays
// nil. The fold never reorders or rewrites ops — callers still run the
// original stage on the scanned relation.
func FoldPushdown(s relation.Schema, ops []OpDesc) (Pushdown, error) {
	var pd Pushdown
	need := map[string]bool{}
	sawProject := false
	for _, op := range ops {
		if op.Kind == OpFilter {
			n, err := expr.Parse(op.Expr)
			if err != nil {
				return Pushdown{}, fmt.Errorf("fold pushdown: filter %q: %w", op.Expr, err)
			}
			for _, id := range expr.Idents(n) {
				need[id] = true
			}
			pd.Filters = append(pd.Filters, op.Expr)
			continue
		}
		if op.Kind == OpProject {
			for _, c := range op.Cols {
				need[c] = true
			}
			sawProject = true
			continue
		}
		break
	}
	if sawProject {
		// Schema-ordered subsequence, so the restricted schema is a
		// stable projection of the stored one.
		for _, c := range s.Cols {
			if need[c.Name] {
				pd.Cols = append(pd.Cols, c.Name)
			}
		}
		if len(pd.Cols) != len(need) {
			missing := []string{}
			for n := range need {
				if !s.Has(n) {
					missing = append(missing, n)
				}
			}
			return Pushdown{}, fmt.Errorf("fold pushdown: columns %v not in scan schema %s", missing, s)
		}
	}
	return pd, nil
}

// ScanStage runs a stage against a scan source with pushdown: it folds
// the leading Filter/Project run into a Pushdown, scans (decoding only
// the needed columns, pruning segments the source can refute), and
// executes the unchanged ops on the result. When both the executor and
// the source speak segments, the stage is scheduled by segment file
// instead of shipping rows.
func ScanStage(ctx context.Context, exec Executor, src ScanSource, ops []OpDesc) (*relation.Relation, Stats, error) {
	full := src.ScanSchema()
	if _, err := OutputSchema(full, ops); err != nil {
		return nil, Stats{}, err
	}
	pd, err := FoldPushdown(full, ops)
	if err != nil {
		return nil, Stats{}, err
	}
	scanSchema := full
	if pd.Cols != nil {
		scanSchema, err = full.Project(pd.Cols...)
		if err != nil {
			return nil, Stats{}, err
		}
	}
	if se, ok := exec.(SegmentExecutor); ok {
		if sl, ok := src.(SegmentLister); ok {
			refs, err := sl.Segments(pd)
			if err != nil {
				return nil, Stats{}, err
			}
			return se.RunSegmentStage(ctx, refs, scanSchema, ops)
		}
	}
	rel, err := src.Scan(ctx, pd)
	if err != nil {
		return nil, Stats{}, err
	}
	if !rel.Schema.Equal(scanSchema) {
		return nil, Stats{}, fmt.Errorf("scan: source returned schema %s, want %s", rel.Schema, scanSchema)
	}
	return exec.RunStage(ctx, rel, ops)
}

// MemSource adapts an in-memory relation to ScanSource: it restricts
// columns per the pushdown but has no zone maps, so it never prunes.
// Used by tests as the no-pruning reference scan.
type MemSource struct {
	Rel *relation.Relation
}

// ScanSchema returns the relation's schema.
func (m *MemSource) ScanSchema() relation.Schema { return m.Rel.Schema }

// Scan returns the relation with partitions preserved and columns
// restricted to pd.Cols (nil = all).
func (m *MemSource) Scan(_ context.Context, pd Pushdown) (*relation.Relation, error) {
	if pd.Cols == nil {
		return m.Rel, nil
	}
	s, err := m.Rel.Schema.Project(pd.Cols...)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(pd.Cols))
	for i, c := range pd.Cols {
		idx[i] = m.Rel.Schema.MustIndex(c)
	}
	parts := make([][]relation.Row, len(m.Rel.Partitions))
	for pi, part := range m.Rel.Partitions {
		rows := make([]relation.Row, len(part))
		for ri, r := range part {
			nr := make(relation.Row, len(idx))
			for i, ci := range idx {
				nr[i] = r[ci]
			}
			rows[ri] = nr
		}
		parts[pi] = rows
	}
	return &relation.Relation{Schema: s, Partitions: parts}, nil
}
