package engine

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"ivnt/internal/memgov"
	"ivnt/internal/relation"
)

// shuffleTestRel builds a relation with string/int keys, an occasional
// null in each key column, and an exactly-representable float payload
// (sixteenths), so aggregation results compare bitwise across plans.
func shuffleTestRel(n, parts int) *relation.Relation {
	s := relation.NewSchema(
		relation.Column{Name: "k", Kind: relation.KindString},
		relation.Column{Name: "g", Kind: relation.KindInt},
		relation.Column{Name: "v", Kind: relation.KindFloat},
	)
	rows := make([]relation.Row, n)
	for i := range rows {
		k := relation.Str(fmt.Sprintf("key%02d", i%17))
		if i%13 == 0 {
			k = relation.Null()
		}
		g := relation.Int(int64(i % 5))
		if i%11 == 0 {
			g = relation.Null()
		}
		rows[i] = relation.Row{k, g, relation.Float(float64(i%32) / 16)}
	}
	return relation.FromRows(s, rows).Repartition(parts)
}

func cellBits(v relation.Value) string {
	if v.K == relation.KindFloat {
		return fmt.Sprintf("f%x", math.Float64bits(v.F))
	}
	return fmt.Sprintf("%d:%s", v.K, v.AsString())
}

func rowKeyString(r relation.Row) string {
	out := ""
	for _, v := range r {
		out += cellBits(v) + "|"
	}
	return out
}

// canonRows flattens a relation to sorted canonical row strings, for
// comparing plans that only promise multiset equality globally.
func canonRows(rel *relation.Relation) []string {
	var out []string
	for _, p := range rel.Partitions {
		for _, r := range p {
			out = append(out, rowKeyString(r))
		}
	}
	sort.Strings(out)
	return out
}

// mustSameExact fails unless both relations are partitionwise bitwise
// identical.
func mustSameExact(t *testing.T, what string, want, got *relation.Relation) {
	t.Helper()
	if !want.Schema.Equal(got.Schema) {
		t.Fatalf("%s: schema mismatch: %v vs %v", what, want.Schema, got.Schema)
	}
	if len(want.Partitions) != len(got.Partitions) {
		t.Fatalf("%s: partitions %d vs %d", what, len(want.Partitions), len(got.Partitions))
	}
	for pi := range want.Partitions {
		wp, gp := want.Partitions[pi], got.Partitions[pi]
		if len(wp) != len(gp) {
			t.Fatalf("%s: partition %d rows %d vs %d", what, pi, len(wp), len(gp))
		}
		for ri := range wp {
			if rowKeyString(wp[ri]) != rowKeyString(gp[ri]) {
				t.Fatalf("%s: partition %d row %d: want %v got %v", what, pi, ri, wp[ri], gp[ri])
			}
		}
	}
}

// The exchange invariant: concatenating ShuffleSplit buckets across
// input partitions in order reproduces PartitionByKey bitwise, at any
// fan-out.
func TestShuffleSplitMatchesPartitionByKey(t *testing.T) {
	rel := shuffleTestRel(500, 7)
	keyIdx := []int{rel.Schema.MustIndex("k"), rel.Schema.MustIndex("g")}
	for _, parts := range []int{1, 2, 7, 64} {
		want, err := rel.PartitionByKey(parts, "k", "g")
		if err != nil {
			t.Fatal(err)
		}
		got := localShuffle(rel, keyIdx, parts)
		mustSameExact(t, fmt.Sprintf("parts=%d", parts), want, got)
	}
}

// Null keys land in exactly one deterministic bucket on every layer
// (Row.Bucket is the shared authority), so a shuffled join never splits
// the null group across partitions.
func TestShuffleNullKeysSingleBucket(t *testing.T) {
	rel := shuffleTestRel(300, 3)
	keyIdx := []int{rel.Schema.MustIndex("k")}
	sh := localShuffle(rel, keyIdx, 8)
	nullPart := -1
	for pi, p := range sh.Partitions {
		for _, r := range p {
			if r[0].IsNull() {
				if nullPart == -1 {
					nullPart = pi
				} else if nullPart != pi {
					t.Fatalf("null keys split across partitions %d and %d", nullPart, pi)
				}
			}
		}
	}
	if nullPart == -1 {
		t.Fatal("test data produced no null keys")
	}
	// And that single bucket is the one Row.Bucket says.
	want := relation.Row{relation.Null()}.Bucket(8, 0)
	if nullPart != want {
		t.Fatalf("null bucket = %d, Row.Bucket says %d", nullPart, want)
	}
}

// The shuffle-hash join plan must agree with the broadcast plan —
// including over null join keys (the Repartition/hasher null-handling
// regression): same multiset of output rows at every fan-out.
func TestLocalShuffleJoinMatchesBroadcast(t *testing.T) {
	left := shuffleTestRel(400, 5)
	rightRows := []relation.Row{}
	for i := 0; i < 17; i++ {
		rightRows = append(rightRows, relation.Row{
			relation.Str(fmt.Sprintf("key%02d", i)), relation.Str(fmt.Sprintf("label%d", i)),
		})
	}
	// A null build key too: must not match anything, must not crash.
	rightRows = append(rightRows, relation.Row{relation.Null(), relation.Str("nolabel")})
	right := relation.FromRows(relation.NewSchema(
		relation.Column{Name: "rk", Kind: relation.KindString},
		relation.Column{Name: "label", Kind: relation.KindString},
	), rightRows).Repartition(2)

	exec := NewLocal(3)
	bcast, _, err := exec.RunStage(ctx, left, []OpDesc{BroadcastJoin(right, []string{"k"}, []string{"rk"})})
	if err != nil {
		t.Fatal(err)
	}
	want := canonRows(bcast)
	if len(want) == 0 {
		t.Fatal("broadcast join produced no rows")
	}
	for _, parts := range []int{1, 2, 7, 64} {
		shuf, st, err := exec.ShuffleJoin(ctx, left, right, []string{"k"}, []string{"rk"}, parts)
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		got := canonRows(shuf)
		if len(got) != len(want) {
			t.Fatalf("parts=%d: %d rows, want %d", parts, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parts=%d: row %d differs: %s vs %s", parts, i, got[i], want[i])
			}
		}
		if st.ShufflePartitions != parts {
			t.Fatalf("parts=%d: stats.ShufflePartitions = %d", parts, st.ShufflePartitions)
		}
	}
}

// The shuffle aggregation plan must be bitwise identical to both the
// broadcast plan (AggregateDistributed) and the single-process
// Aggregate — exact here because the float payload is sixteenths.
func TestLocalShuffleAggregateMatchesAggregate(t *testing.T) {
	rel := shuffleTestRel(600, 6)
	groupBy := []string{"k", "g"}
	aggs := []AggSpec{
		{Fn: AggCount, As: "n"},
		{Fn: AggSum, Col: "v", As: "sum"},
		{Fn: AggMin, Col: "v", As: "min"},
		{Fn: AggMax, Col: "v", As: "max"},
	}
	exec := NewLocal(3)
	want, err := Aggregate(rel, groupBy, aggs)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := AggregateDistributed(ctx, exec, rel, groupBy, aggs)
	if err != nil {
		t.Fatal(err)
	}
	mustSameExact(t, "distributed-vs-local", want, dist)
	for _, parts := range []int{1, 2, 7, 64} {
		got, _, err := exec.ShuffleAggregate(ctx, rel, groupBy, aggs, parts)
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		mustSameExact(t, fmt.Sprintf("shuffle-agg parts=%d", parts), want, got)
	}
}

// ShuffleMaterialize with a pipeline applies the ops before hashing.
func TestLocalShuffleMaterializeWithOps(t *testing.T) {
	rel := shuffleTestRel(200, 4)
	exec := NewLocal(2)
	filtered, _, err := exec.RunStage(ctx, rel, []OpDesc{Filter("g == 2")})
	if err != nil {
		t.Fatal(err)
	}
	want, err := filtered.PartitionByKey(5, "k")
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := exec.ShuffleMaterialize(ctx, rel, []OpDesc{Filter("g == 2")}, []string{"k"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	mustSameExact(t, "materialize", want, got)
}

func TestMergeByGroupKeyOrders(t *testing.T) {
	s := relation.NewSchema(
		relation.Column{Name: "k", Kind: relation.KindString},
		relation.Column{Name: "n", Kind: relation.KindInt},
	)
	_ = s
	parts := [][]relation.Row{
		{{relation.Str("b"), relation.Int(1)}, {relation.Str("d"), relation.Int(2)}},
		{{relation.Str("a"), relation.Int(3)}, {relation.Str("c"), relation.Int(4)}},
		nil,
	}
	got := MergeByGroupKey(parts, 1)
	keys := make([]string, len(got))
	for i, r := range got {
		keys[i] = r[0].AsString()
	}
	if fmt.Sprint(keys) != "[a b c d]" {
		t.Fatalf("merged order = %v", keys)
	}
}

// The debug bucket hook misroutes rows (difftest uses it to prove the
// invariant detects wrong-bucket bugs); removing it restores agreement.
func TestSetDebugShuffleBucket(t *testing.T) {
	rel := shuffleTestRel(100, 2)
	keyIdx := []int{rel.Schema.MustIndex("k")}
	want, err := rel.PartitionByKey(4, "k")
	if err != nil {
		t.Fatal(err)
	}
	SetDebugShuffleBucket(func(b, parts int) int { return (b + 1) % parts })
	broken := localShuffle(rel, keyIdx, 4)
	SetDebugShuffleBucket(nil)
	same := true
	for pi := range want.Partitions {
		if len(want.Partitions[pi]) != len(broken.Partitions[pi]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("bucket mutation hook had no observable effect")
	}
	fixed := localShuffle(rel, keyIdx, 4)
	mustSameExact(t, "after hook removal", want, fixed)
}

// Plan selection: small builds broadcast, large builds shuffle, and
// both plans return the same rows.
func TestDistributedJoinPlanSelection(t *testing.T) {
	left := shuffleTestRel(300, 4)
	right := relation.FromRows(relation.NewSchema(
		relation.Column{Name: "rk", Kind: relation.KindString},
		relation.Column{Name: "label", Kind: relation.KindString},
	), []relation.Row{
		{relation.Str("key03"), relation.Str("three")},
		{relation.Str("key07"), relation.Str("seven")},
	}).Repartition(1)
	exec := NewLocal(2)

	out1, plan1, _, err := DistributedJoin(ctx, exec, left, right, []string{"k"}, []string{"rk"}, PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if plan1 != PlanBroadcast {
		t.Fatalf("tiny build chose %v, want broadcast", plan1)
	}
	out2, plan2, _, err := DistributedJoin(ctx, exec, left, right, []string{"k"}, []string{"rk"}, PlanConfig{BroadcastThreshold: 1, Parts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if plan2 != PlanShuffle {
		t.Fatalf("threshold=1 chose %v, want shuffle", plan2)
	}
	w, g := canonRows(out1), canonRows(out2)
	if fmt.Sprint(w) != fmt.Sprint(g) {
		t.Fatalf("plans disagree: %d vs %d rows", len(w), len(g))
	}
	if PlanBroadcast.String() != "broadcast" || PlanShuffle.String() != "shuffle" {
		t.Fatal("PlanKind strings")
	}
}

// Plan selection for aggregation, and the budget-derived threshold: a
// governed process with a small budget prefers shuffle without an
// explicit threshold.
func TestDistributedAggregatePlanSelection(t *testing.T) {
	rel := shuffleTestRel(400, 4)
	groupBy := []string{"k"}
	aggs := []AggSpec{{Fn: AggCount, As: "n"}, {Fn: AggSum, Col: "v", As: "sum"}}
	exec := NewLocal(2)

	out1, plan1, _, err := DistributedAggregate(ctx, exec, rel, groupBy, aggs, PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if plan1 != PlanBroadcast {
		t.Fatalf("unbudgeted chose %v, want broadcast", plan1)
	}

	old := memgov.Default().Budget()
	memgov.Default().SetBudget(1 << 10) // tiny budget: threshold = 256 bytes
	defer memgov.Default().SetBudget(old)
	out2, plan2, _, err := DistributedAggregate(ctx, exec, rel, groupBy, aggs, PlanConfig{Parts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if plan2 != PlanShuffle {
		t.Fatalf("budgeted chose %v, want shuffle", plan2)
	}
	mustSameExact(t, "agg plans", out1, out2)
}
