package engine

import (
	"encoding/binary"
	"hash"
	"hash/fnv"
	"math"

	"ivnt/internal/relation"
)

// StageFingerprint returns a stable content hash of a stage: the input
// schema plus every operator descriptor, including broadcast-join table
// contents. Two stages with equal fingerprints compile to equivalent
// pipelines, which is what makes the fingerprint a safe cache key — on
// the local executor's pipeline cache and on remote executors, where
// the v3 wire protocol ships each stage once and addresses it by this
// value (content addressing means a cached entry can never be stale).
func StageFingerprint(in relation.Schema, ops []OpDesc) uint64 {
	h := fnv.New64a()
	hashSchema(h, in)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(ops)))
	h.Write(b[:])
	for _, op := range ops {
		hashOp(h, op)
	}
	return h.Sum64()
}

// TableFingerprint returns a stable content hash of a broadcast table
// (schema + rows). The driver keys shipped broadcast tables by it so an
// executor connection receives each distinct table at most once.
func TableFingerprint(s relation.Schema, rows []relation.Row) uint64 {
	h := fnv.New64a()
	hashSchema(h, s)
	hashRows(h, rows)
	return h.Sum64()
}

func hashSchema(h hash.Hash64, s relation.Schema) {
	hashInt(h, len(s.Cols))
	for _, c := range s.Cols {
		hashString(h, c.Name)
		h.Write([]byte{byte(c.Kind)})
	}
}

func hashOp(h hash.Hash64, op OpDesc) {
	h.Write([]byte{byte(op.Kind), byte(op.ColKind)})
	hashString(h, op.Expr)
	hashString(h, op.Col)
	hashString(h, op.RuleCol)
	hashStrings(h, op.Cols)
	// Shuffle fan-out: two exchanges over the same keys but different
	// partition counts must compile and cache as distinct stages.
	hashInt(h, op.Parts)
	hashStrings(h, op.GroupBy)
	hashInt(h, len(op.Aggs))
	for _, a := range op.Aggs {
		h.Write([]byte{byte(a.Fn)})
		hashString(h, a.Col)
		hashString(h, a.As)
	}
	if op.Join == nil {
		h.Write([]byte{0})
		return
	}
	h.Write([]byte{1})
	hashSchema(h, op.Join.Schema)
	hashStrings(h, op.Join.LeftKeys)
	hashStrings(h, op.Join.RightKeys)
	hashRows(h, op.Join.Rows)
}

func hashRows(h hash.Hash64, rows []relation.Row) {
	hashInt(h, len(rows))
	for _, r := range rows {
		hashInt(h, len(r))
		for _, v := range r {
			hashValue(h, v)
		}
	}
}

// hashValue streams a canonical byte form of one cell: kind tag plus
// exact payload bits (float64 bit pattern, not numeric value, so ±0 and
// NaN payloads distinguish).
func hashValue(h hash.Hash64, v relation.Value) {
	var b [9]byte
	b[0] = byte(v.K)
	switch v.K {
	case relation.KindNull:
		h.Write(b[:1])
	case relation.KindBool, relation.KindInt:
		binary.LittleEndian.PutUint64(b[1:], uint64(v.I))
		h.Write(b[:9])
	case relation.KindFloat:
		binary.LittleEndian.PutUint64(b[1:], math.Float64bits(v.F))
		h.Write(b[:9])
	case relation.KindString:
		h.Write(b[:1])
		hashString(h, v.S)
	case relation.KindBytes:
		h.Write(b[:1])
		hashInt(h, len(v.B))
		h.Write(v.B)
	}
}

func hashString(h hash.Hash64, s string) {
	hashInt(h, len(s))
	h.Write([]byte(s))
}

func hashStrings(h hash.Hash64, ss []string) {
	hashInt(h, len(ss))
	for _, s := range ss {
		hashString(h, s)
	}
}

func hashInt(h hash.Hash64, i int) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(i))
	h.Write(b[:])
}
