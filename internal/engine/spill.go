// Spill-to-disk execution: the degradation half of the memory-governed
// contract whose accounting half is internal/memgov. Operators that
// build whole-partition state (sort copies, aggregation hash tables)
// first ask the process governor for a reservation sized to their
// working set; a denial routes them here instead of OOM-killing the
// process.
//
// Two external algorithms cover the engine's big consumers:
//
//   - External merge sort (SortWithin / SortGlobal): the input is cut
//     into consecutive segments that fit the run budget, each segment
//     is stably sorted with the operator's compiled comparator and
//     written to a temp file as length-prefixed colcodec blocks, then
//     a k-way heap merge streams the runs back. Ties between runs
//     break toward the lower run index, which together with stable
//     in-run sorting reproduces sort.SliceStable bit for bit.
//
//   - Grace hash aggregation (PartialAgg / FinalAggregate): rows are
//     hash-partitioned into shards by their group-key encoding,
//     shards spill to temp files, and each shard aggregates
//     independently on read-back. Group keys are disjoint across
//     shards and each shard's output comes back ordered by key, so a
//     k-way key merge reproduces the in-memory key order exactly.
//
// Every spill I/O failure (ENOSPC, truncation, a corrupt block) is
// wrapped in RetryableError: the task fails and can be retried on
// another slot, the process never dies. Debug hooks let tests inject
// exactly those faults.
package engine

import (
	"bytes"
	"container/heap"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"sort"
	"sync/atomic"

	"ivnt/internal/colcodec"
	"ivnt/internal/memgov"
	"ivnt/internal/relation"
)

// ------------------------------------------------------------- error taxonomy

// RetryableError marks a task failure as environmental (disk full,
// truncated spill file, transient I/O): the work is sound and a retry
// on another slot or after cleanup may succeed. The cluster driver
// requeues retryable task errors instead of failing the stage.
type RetryableError struct{ Err error }

func (e *RetryableError) Error() string { return "retryable: " + e.Err.Error() }

// Unwrap exposes the cause to errors.Is/As.
func (e *RetryableError) Unwrap() error { return e.Err }

// Retryable wraps err as a RetryableError (nil stays nil).
func Retryable(err error) error {
	if err == nil {
		return nil
	}
	return &RetryableError{Err: err}
}

// IsRetryable reports whether err is (or wraps) a RetryableError.
func IsRetryable(err error) bool {
	var re *RetryableError
	return errors.As(err, &re)
}

// PanicError is a panic recovered during task execution, converted to
// an ordinary error carrying the panic value and stack so the failure
// is diagnosable from the driver without a process death on the
// executor. The driver counts these separately and quarantines a task
// as poisoned after repeated panics.
type PanicError struct {
	Val   any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("task panic: %v\n%s", e.Val, e.Stack)
}

// IsPanic reports whether err is (or wraps) a PanicError.
func IsPanic(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}

// ApplyContained runs the pipeline with panic containment: a panic in
// any operator (or injected via SetDebugApplyHook) comes back as a
// *PanicError instead of unwinding past the executor's task loop. Both
// executors run tasks through this entry point.
func (p *StagePipeline) ApplyContained(part []relation.Row) (out []relation.Row, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Val: r, Stack: debug.Stack()}
		}
	}()
	if f := debugApplyHook.Load(); f != nil {
		(*f)()
	}
	return p.ApplyInstrumented(part)
}

// --------------------------------------------------------------- debug hooks

// DebugForceSpill forces every governed operator down its external
// path regardless of budget. The differential spill suite and the
// edge-case tests use it to make spilling deterministic.
var DebugForceSpill atomic.Bool

// debugSpillFailure, when set, is consulted before every spill file
// operation with the operation name ("create", "write", "read"); a
// non-nil return is injected as that operation's failure. Atomic so
// cluster tests can arm it from the test goroutine while executor
// goroutines run tasks.
var debugSpillFailure atomic.Pointer[func(op string) error]

// SetDebugSpillFailure installs (or, with nil, removes) the spill
// fault-injection hook.
func SetDebugSpillFailure(f func(op string) error) {
	if f == nil {
		debugSpillFailure.Store(nil)
		return
	}
	debugSpillFailure.Store(&f)
}

// debugSpillTruncate, when positive, chops that many bytes off the end
// of every finished spill run before read-back, simulating a partial
// write that fsync never saw.
var debugSpillTruncate atomic.Int64

// SetDebugSpillTruncate arms (n > 0) or disarms (n <= 0) spill-file
// truncation.
func SetDebugSpillTruncate(n int64) { debugSpillTruncate.Store(n) }

// debugApplyHook, when set, runs at the top of ApplyContained; a
// panicking hook exercises the containment path end to end.
var debugApplyHook atomic.Pointer[func()]

// SetDebugApplyHook installs (or, with nil, removes) the hook.
func SetDebugApplyHook(f func()) {
	if f == nil {
		debugApplyHook.Store(nil)
		return
	}
	debugApplyHook.Store(&f)
}

func spillFault(op string) error {
	if p := debugSpillFailure.Load(); p != nil {
		if err := (*p)(op); err != nil {
			return Retryable(fmt.Errorf("spill %s: %w", op, err))
		}
	}
	return nil
}

// ------------------------------------------------------------ size estimation

// rowFootprint estimates the resident bytes of one row: slice header
// plus the fixed Value structs plus string/bytes payloads. It is a
// declared working-set estimate for the governor, not a heap
// measurement — consistency matters more than exactness.
func rowFootprint(r relation.Row) int64 {
	n := int64(24 + 64*len(r))
	for i := range r {
		n += int64(len(r[i].S) + len(r[i].B))
	}
	return n
}

// RowsFootprint estimates the resident bytes of a row slice, the unit
// operators reserve from the governor before materializing state.
func RowsFootprint(rows []relation.Row) int64 {
	var n int64
	for i := range rows {
		n += rowFootprint(rows[i])
	}
	return n
}

// Spill sizing: runs target a quarter of the budget (so sort copy +
// merge buffers coexist under it), clamped to keep tiny test budgets
// from degenerating into per-row files and huge budgets from buffering
// unbounded runs.
const (
	minSpillRun   = 4 << 10
	maxSpillRun   = 32 << 20
	minSpillBlock = 2 << 10
)

func spillRunBytes(g *memgov.Governor) int64 {
	b := g.Budget()
	if b <= 0 {
		// Forced spill without a budget (debug/difftest): pick a run
		// size that exercises multi-block files without thrashing.
		return 4 << 20
	}
	rb := b / 4
	if rb < minSpillRun {
		rb = minSpillRun
	}
	if rb > maxSpillRun {
		rb = maxSpillRun
	}
	return rb
}

// ----------------------------------------------------------- spill run files

// spillWriter writes one spill run: a temp file of uvarint
// length-prefixed colcodec frames (the shared colcodec.FrameWriter
// format, which the shuffle exchange also speaks on the wire), deleted
// when the matching reader closes.
type spillWriter struct {
	f      *os.File
	fw     *colcodec.FrameWriter
	schema relation.Schema
	bytes  int64
}

func newSpillWriter(s relation.Schema) (*spillWriter, error) {
	if err := spillFault("create"); err != nil {
		return nil, err
	}
	f, err := os.CreateTemp("", "ivnt-spill-*.run")
	if err != nil {
		return nil, Retryable(fmt.Errorf("spill create: %w", err))
	}
	return &spillWriter{f: f, fw: colcodec.NewFrameWriter(f), schema: s}, nil
}

func (w *spillWriter) writeBlock(rows []relation.Row) error {
	if len(rows) == 0 {
		return nil
	}
	if err := spillFault("write"); err != nil {
		return err
	}
	data, err := colcodec.Encode(w.schema, rows, colcodec.Options{})
	if err != nil {
		// Encode failure is deterministic (schema mismatch), not
		// environmental: retrying the task cannot help.
		return fmt.Errorf("spill encode: %w", err)
	}
	if err := w.fw.WriteFrame(data); err != nil {
		return Retryable(fmt.Errorf("spill write: %w", err))
	}
	w.bytes = w.fw.Bytes()
	return nil
}

// finish flushes, applies any armed truncation fault, rewinds and
// hands the file to a reader. On error the temp file is removed.
func (w *spillWriter) finish() (*spillReader, error) {
	if err := w.fw.Flush(); err != nil {
		w.abort()
		return nil, Retryable(fmt.Errorf("spill flush: %w", err))
	}
	if t := debugSpillTruncate.Load(); t > 0 {
		sz := w.bytes - t
		if sz < 0 {
			sz = 0
		}
		if err := w.f.Truncate(sz); err != nil {
			w.abort()
			return nil, Retryable(fmt.Errorf("spill truncate: %w", err))
		}
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		w.abort()
		return nil, Retryable(fmt.Errorf("spill seek: %w", err))
	}
	return &spillReader{f: w.f, fr: colcodec.NewFrameReader(w.f), schema: w.schema}, nil
}

func (w *spillWriter) abort() {
	name := w.f.Name()
	w.f.Close()
	os.Remove(name)
}

// spillReader streams the blocks of one finished run back. close
// removes the underlying temp file.
type spillReader struct {
	f      *os.File
	fr     *colcodec.FrameReader
	schema relation.Schema
}

// next returns the next decoded block, or (nil, io.EOF) at a clean end
// of file. Truncation mid-block or mid-header surfaces as a retryable
// error, never a short result.
func (r *spillReader) next() ([]relation.Row, error) {
	if err := spillFault("read"); err != nil {
		return nil, err
	}
	buf, err := r.fr.Next()
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, Retryable(fmt.Errorf("spill read: %w", err))
	}
	rows, err := colcodec.Decode(r.schema, buf)
	if err != nil {
		return nil, Retryable(fmt.Errorf("spill read: %w", err))
	}
	return rows, nil
}

func (r *spillReader) close() {
	name := r.f.Name()
	r.f.Close()
	os.Remove(name)
}

// -------------------------------------------------------- external merge sort

// compileRowCompare is compileComparator's three-way twin, used by the
// k-way merge (a heap needs an ordering over rows from different
// runs, not positions within one slice).
func compileRowCompare(colIdx []int) func(a, b relation.Row) int {
	idx := append([]int(nil), colIdx...)
	return func(a, b relation.Row) int {
		for _, ci := range idx {
			if c := a[ci].Compare(b[ci]); c != 0 {
				return c
			}
		}
		return 0
	}
}

// mergeCursor walks one spill run during the merge, holding a forced
// reservation for its currently decoded block only.
type mergeCursor struct {
	r     *spillReader
	rows  []relation.Row
	pos   int
	idx   int // run index, the stability tie-break
	g     *memgov.Governor
	grant *memgov.Grant
}

func (c *mergeCursor) cur() relation.Row { return c.rows[c.pos] }

// advance steps to the next row, refilling from the run file when the
// block is exhausted. Returns false at end of run.
func (c *mergeCursor) advance() (bool, error) {
	c.pos++
	if c.pos < len(c.rows) {
		return true, nil
	}
	c.grant.Release()
	rows, err := c.r.next()
	if err == io.EOF {
		c.rows = nil
		return false, nil
	}
	if err != nil {
		return false, err
	}
	c.rows, c.pos = rows, 0
	c.grant = c.g.ForceGrant(RowsFootprint(rows))
	return true, nil
}

type mergeHeap struct {
	cs  []*mergeCursor
	cmp func(a, b relation.Row) int
}

func (h *mergeHeap) Len() int { return len(h.cs) }
func (h *mergeHeap) Less(i, j int) bool {
	if c := h.cmp(h.cs[i].cur(), h.cs[j].cur()); c != 0 {
		return c < 0
	}
	return h.cs[i].idx < h.cs[j].idx
}
func (h *mergeHeap) Swap(i, j int)      { h.cs[i], h.cs[j] = h.cs[j], h.cs[i] }
func (h *mergeHeap) Push(x any)         { h.cs = append(h.cs, x.(*mergeCursor)) }
func (h *mergeHeap) Pop() any {
	c := h.cs[len(h.cs)-1]
	h.cs = h.cs[:len(h.cs)-1]
	return c
}

// externalSortRows spills consecutive budget-sized segments of rows as
// sorted runs and merges them back. sortSeg must return a *stably*
// sorted copy of its segment under the same order cmp encodes; the
// merge then breaks ties toward the lower run index, so an element's
// final position depends only on (key, original index) — exactly
// sort.SliceStable over the whole input.
func externalSortRows(g *memgov.Governor, s relation.Schema, rows []relation.Row,
	sortSeg func([]relation.Row) []relation.Row, cmp func(a, b relation.Row) int,
	label string) ([]relation.Row, error) {

	mSpills.With(label).Inc()
	runBytes := spillRunBytes(g)
	blockBytes := runBytes / 8
	if blockBytes < minSpillBlock {
		blockBytes = minSpillBlock
	}

	var readers []*spillReader
	defer func() {
		for _, r := range readers {
			r.close()
		}
	}()

	// Write phase under one run-sized reservation: the sorted copy of
	// the current segment is the bounded working set. ForceGrant keeps
	// a pathologically small budget from deadlocking the spiller.
	wg := g.TryGrant(runBytes)
	if wg == nil {
		wg = g.ForceGrant(minSpillRun)
	}
	var spilled int64
	flushRun := func(seg []relation.Row) error {
		sorted := sortSeg(seg)
		w, err := newSpillWriter(s)
		if err != nil {
			return err
		}
		bs := 0
		var bacc int64
		for i := range sorted {
			bacc += rowFootprint(sorted[i])
			if bacc >= blockBytes || i == len(sorted)-1 {
				if err := w.writeBlock(sorted[bs : i+1]); err != nil {
					w.abort()
					return err
				}
				bs, bacc = i+1, 0
			}
		}
		r, err := w.finish()
		if err != nil {
			return err
		}
		spilled += w.bytes
		readers = append(readers, r)
		return nil
	}
	start := 0
	var acc int64
	for i := range rows {
		acc += rowFootprint(rows[i])
		if acc >= runBytes {
			if err := flushRun(rows[start : i+1]); err != nil {
				wg.Release()
				return nil, err
			}
			start, acc = i+1, 0
		}
	}
	if start < len(rows) {
		if err := flushRun(rows[start:]); err != nil {
			wg.Release()
			return nil, err
		}
	}
	wg.Release()
	mSpillBytes.With(label).Add(spilled)

	// Merge phase: one decoded block per run is resident, each under
	// its own forced reservation released on refill.
	h := &mergeHeap{cmp: cmp}
	defer func() {
		for _, c := range h.cs {
			c.grant.Release()
		}
	}()
	for i, r := range readers {
		blk, err := r.next()
		if err == io.EOF {
			continue
		}
		if err != nil {
			return nil, err
		}
		h.cs = append(h.cs, &mergeCursor{
			r: r, rows: blk, idx: i, g: g, grant: g.ForceGrant(RowsFootprint(blk)),
		})
	}
	heap.Init(h)
	out := make([]relation.Row, 0, len(rows))
	for h.Len() > 0 {
		c := h.cs[0]
		out = append(out, c.cur())
		more, err := c.advance()
		if err != nil {
			return nil, err
		}
		if more {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return out, nil
}

// applySort is the governed OpSortWithin kernel: in-memory when the
// working set fits the budget (or no budget is set), external merge
// sort otherwise.
func (st *compiledOp) applySort(rows []relation.Row) ([]relation.Row, error) {
	g := memgov.Default()
	sortSeg := func(seg []relation.Row) []relation.Row {
		cp := make([]relation.Row, len(seg))
		copy(cp, seg)
		sort.SliceStable(cp, st.less(cp))
		return cp
	}
	if !DebugForceSpill.Load() {
		if g.Unlimited() {
			return sortSeg(rows), nil
		}
		if gr := g.TryGrant(RowsFootprint(rows)); gr != nil {
			defer gr.Release()
			return sortSeg(rows), nil
		}
	}
	return externalSortRows(g, st.in, rows, sortSeg, compileRowCompare(st.colIdx), "sortwithin")
}

// SortRelation globally sorts rel by cols under the memory governor:
// the in-memory path is relation.SortBy, the degraded path the same
// external merge sort the per-partition operator uses. Dataset
// SortGlobal routes through here.
func SortRelation(rel *relation.Relation, cols ...string) (*relation.Relation, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := rel.Schema.Index(c)
		if j < 0 {
			return nil, fmt.Errorf("engine: sort key %q not in schema %s", c, rel.Schema)
		}
		idx[i] = j
	}
	g := memgov.Default()
	if !DebugForceSpill.Load() {
		if g.Unlimited() {
			return rel.SortBy(true, cols...)
		}
		if gr := g.TryGrant(2 * RowsFootprint(rel.Rows())); gr != nil {
			defer gr.Release()
			return rel.SortBy(true, cols...)
		}
	}
	less := compileComparator(idx)
	sortSeg := func(seg []relation.Row) []relation.Row {
		cp := make([]relation.Row, len(seg))
		copy(cp, seg)
		sort.SliceStable(cp, less(cp))
		return cp
	}
	sorted, err := externalSortRows(g, rel.Schema, rel.Rows(), sortSeg, compileRowCompare(idx), "sortglobal")
	if err != nil {
		return nil, err
	}
	return relation.FromRows(rel.Schema, sorted), nil
}

// ------------------------------------------------------ grace hash aggregation

const aggShards = 8

// groupKeyAppend appends the canonical group-key encoding of row r
// (the same AsString + NUL framing Aggregate and MergePartials key
// their hash tables with) to kb.
func groupKeyAppend(kb []byte, r relation.Row, keyIdx []int) []byte {
	for _, ci := range keyIdx {
		kb = append(kb, r[ci].AsString()...)
		kb = append(kb, 0)
	}
	return kb
}

// fnvShard hashes a group-key encoding to a shard (FNV-1a).
func fnvShard(kb []byte) int {
	h := uint64(14695981039346656037)
	for _, b := range kb {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return int(h % aggShards)
}

// externalGroupReduce is the grace-hash skeleton shared by external
// PartialAgg and external FinalAggregate: hash-partition the input
// rows into shards by group key, spill each shard, then reduce the
// shards independently and merge their (key-ordered, key-disjoint)
// outputs back into one globally key-ordered row slice.
//
// reduce is the in-memory aggregation applied to one shard's rows; its
// output must be ordered by the same key encoding, with the group
// columns leading (both Aggregate and MergePartials satisfy this).
// nkey is how many leading output columns form the key. parts is
// iterated in order so per-group accumulation order (first/last
// semantics) matches the in-memory pass exactly.
//
// Degradation note: a single pathological key still lands all its rows
// in one shard; the shard's *output* stays one row, but its input must
// fit memory during reduce. That bound is documented in docs/MEMORY.md.
func externalGroupReduce(g *memgov.Governor, s relation.Schema, parts [][]relation.Row,
	keyIdx []int, nkey int, reduce func([]relation.Row) ([]relation.Row, error),
	label string) ([]relation.Row, error) {

	mSpills.With(label).Inc()
	flushBytes := spillRunBytes(g) / aggShards
	if flushBytes < minSpillBlock {
		flushBytes = minSpillBlock
	}

	var writers [aggShards]*spillWriter
	cleanupWriters := func() {
		for _, w := range writers {
			if w != nil {
				w.abort()
			}
		}
	}

	// Scatter phase under one bounded reservation for the shard
	// buffers.
	bg := g.TryGrant(spillRunBytes(g))
	if bg == nil {
		bg = g.ForceGrant(minSpillRun)
	}
	var bufs [aggShards][]relation.Row
	var baccs [aggShards]int64
	var spilled int64
	flushShard := func(si int) error {
		if len(bufs[si]) == 0 {
			return nil
		}
		if writers[si] == nil {
			w, err := newSpillWriter(s)
			if err != nil {
				return err
			}
			writers[si] = w
		}
		if err := writers[si].writeBlock(bufs[si]); err != nil {
			return err
		}
		bufs[si] = bufs[si][:0]
		baccs[si] = 0
		return nil
	}
	var kb []byte
	for _, part := range parts {
		for _, r := range part {
			kb = groupKeyAppend(kb[:0], r, keyIdx)
			si := fnvShard(kb)
			bufs[si] = append(bufs[si], r)
			baccs[si] += rowFootprint(r)
			if baccs[si] >= flushBytes {
				if err := flushShard(si); err != nil {
					bg.Release()
					cleanupWriters()
					return nil, err
				}
			}
		}
	}
	for si := range bufs {
		if err := flushShard(si); err != nil {
			bg.Release()
			cleanupWriters()
			return nil, err
		}
	}
	bg.Release()
	for _, w := range writers {
		if w != nil {
			spilled += w.bytes
		}
	}
	mSpillBytes.With(label).Add(spilled)

	// Reduce phase: read one shard back at a time (under a forced
	// reservation for its actual footprint), aggregate it, keep only
	// the condensed output.
	type shardOut struct {
		rows  []relation.Row
		grant *memgov.Grant
	}
	var outs []shardOut
	defer func() {
		for _, o := range outs {
			o.grant.Release()
		}
	}()
	for si := 0; si < aggShards; si++ {
		w := writers[si]
		if w == nil {
			continue
		}
		writers[si] = nil
		r, err := w.finish()
		if err != nil {
			cleanupWriters()
			return nil, err
		}
		// The reservation grows with the accumulating shard: each block
		// swaps the previous whole-shard grant for one covering the new
		// total, so Used() tracks the true resident footprint.
		var shardRows []relation.Row
		var shardFoot int64
		var sg *memgov.Grant
		for {
			blk, berr := r.next()
			if berr == io.EOF {
				break
			}
			if berr != nil {
				sg.Release()
				r.close()
				cleanupWriters()
				return nil, berr
			}
			shardRows = append(shardRows, blk...)
			shardFoot += RowsFootprint(blk)
			ng := g.ForceGrant(shardFoot)
			sg.Release()
			sg = ng
		}
		r.close()
		agged, err := reduce(shardRows)
		if err != nil {
			sg.Release()
			cleanupWriters()
			return nil, err
		}
		sg.Release()
		outs = append(outs, shardOut{rows: agged, grant: g.ForceGrant(RowsFootprint(agged))})
	}

	// Merge phase: shard outputs are key-ordered and key-disjoint, so
	// an n-way minimum walk reproduces the global key order.
	type cursor struct {
		rows []relation.Row
		pos  int
		key  []byte
	}
	outIdx := keyRange(nkey)
	cs := make([]*cursor, 0, len(outs))
	var total int
	for _, o := range outs {
		if len(o.rows) == 0 {
			continue
		}
		c := &cursor{rows: o.rows}
		c.key = groupKeyAppend(nil, c.rows[0], outIdx)
		cs = append(cs, c)
		total += len(o.rows)
	}
	merged := make([]relation.Row, 0, total)
	for len(cs) > 0 {
		min := 0
		for i := 1; i < len(cs); i++ {
			if bytes.Compare(cs[i].key, cs[min].key) < 0 {
				min = i
			}
		}
		c := cs[min]
		merged = append(merged, c.rows[c.pos])
		c.pos++
		if c.pos == len(c.rows) {
			cs = append(cs[:min], cs[min+1:]...)
		} else {
			c.key = groupKeyAppend(c.key[:0], c.rows[c.pos], outIdx)
		}
	}
	return merged, nil
}

// keyRange returns [0, 1, ..., n-1]: the leading group columns of an
// aggregation output row.
func keyRange(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// applyAgg is the governed OpPartialAgg kernel. The in-memory hash
// table plus output is bounded by roughly twice the input footprint;
// when that reservation is denied, grace hash aggregation shards the
// input through disk.
func (st *compiledOp) applyAgg(rows []relation.Row) ([]relation.Row, error) {
	g := memgov.Default()
	if !DebugForceSpill.Load() {
		if g.Unlimited() {
			return applyPartialAgg(st.in, rows, st.desc.GroupBy, st.desc.Aggs)
		}
		if gr := g.TryGrant(2 * RowsFootprint(rows)); gr != nil {
			defer gr.Release()
			return applyPartialAgg(st.in, rows, st.desc.GroupBy, st.desc.Aggs)
		}
	}
	keyIdx := make([]int, len(st.desc.GroupBy))
	for i, c := range st.desc.GroupBy {
		keyIdx[i] = st.in.MustIndex(c)
	}
	return externalGroupReduce(g, st.in, [][]relation.Row{rows}, keyIdx, len(st.desc.GroupBy),
		func(shard []relation.Row) ([]relation.Row, error) {
			return applyPartialAgg(st.in, shard, st.desc.GroupBy, st.desc.Aggs)
		}, "partialagg")
}
