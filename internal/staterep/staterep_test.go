package staterep

import (
	"strings"
	"testing"

	"ivnt/internal/relation"
	"ivnt/internal/rules"
)

func seqOf(sid string, pts ...[2]interface{}) *relation.Relation {
	rel := relation.New(rules.SequenceSchema())
	for _, p := range pts {
		rel.Append(relation.Row{
			relation.Float(p[0].(float64)),
			relation.Str(sid),
			relation.Str(p[1].(string)),
			relation.Str("FC"),
		})
	}
	return rel
}

// lightsScenario reproduces the shape of Table 4: headlight,
// indicatorlight and speed signals merging into forward-filled states.
func lightsScenario() (*Table, error) {
	headlight := seqOf("headlight",
		[2]interface{}{2.0, "off"},
		[2]interface{}{20.1, "parklight on"},
		[2]interface{}{23.5, "headlight on"},
	)
	indicator := seqOf("indicatorlight",
		[2]interface{}{4.25, "left on"},
		[2]interface{}{7.22, "off"},
	)
	speed := seqOf("speed",
		[2]interface{}{2.0, "(high,increasing)"},
		[2]interface{}{14.0, "(high,steady)"},
		[2]interface{}{22.0, "outlier v=800"},
		[2]interface{}{23.0, "(high,steady)"},
	)
	return Build(headlight, indicator, speed)
}

func TestBuildForwardFill(t *testing.T) {
	tb, err := lightsScenario()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Signals) != 3 {
		t.Fatalf("signals = %v", tb.Signals)
	}
	// 9 distinct timestamps (2.0 shared by headlight and speed).
	if tb.NumRows() != 8 {
		t.Fatalf("rows = %d, want 8 (times %v)", tb.NumRows(), tb.Times)
	}
	// Row at t=4.25: headlight forward-filled "off", indicator just
	// became "left on", speed still "(high,increasing)".
	r := tb.Row(1)
	if r["headlight"] != "off" || r["indicatorlight"] != "left on" || r["speed"] != "(high,increasing)" {
		t.Fatalf("row 1 = %v", r)
	}
	// Row at t=22: outlier visible with lights forward-filled.
	var out map[string]string
	for i, tt := range tb.Times {
		if tt == 22.0 {
			out = tb.Row(i)
		}
	}
	if out == nil || out["speed"] != "outlier v=800" || out["headlight"] != "parklight on" {
		t.Fatalf("outlier state = %v", out)
	}
}

func TestBuildUnknownBeforeFirstOccurrence(t *testing.T) {
	tb, err := lightsScenario()
	if err != nil {
		t.Fatal(err)
	}
	// At t=2.0 the indicator has not occurred yet.
	if tb.Row(0)["indicatorlight"] != Unknown {
		t.Fatalf("row 0 = %v", tb.Row(0))
	}
}

func TestBuildSimultaneousEventsCoalesce(t *testing.T) {
	a := seqOf("a", [2]interface{}{1.0, "x"})
	b := seqOf("b", [2]interface{}{1.0, "y"})
	tb, err := Build(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1", tb.NumRows())
	}
	r := tb.Row(0)
	if r["a"] != "x" || r["b"] != "y" {
		t.Fatalf("row = %v", r)
	}
}

func TestColumnAndStateKey(t *testing.T) {
	tb, err := lightsScenario()
	if err != nil {
		t.Fatal(err)
	}
	col, err := tb.Column("headlight")
	if err != nil {
		t.Fatal(err)
	}
	if col[0] != "off" || col[len(col)-1] != "headlight on" {
		t.Fatalf("column = %v", col)
	}
	if _, err := tb.Column("nope"); err == nil {
		t.Fatal("unknown column must fail")
	}
	if tb.StateKey(0) == tb.StateKey(tb.NumRows()-1) {
		t.Fatal("distinct states must have distinct keys")
	}
}

func TestToRelation(t *testing.T) {
	tb, err := lightsScenario()
	if err != nil {
		t.Fatal(err)
	}
	rel := tb.ToRelation()
	if rel.NumRows() != tb.NumRows() {
		t.Fatalf("relation rows = %d", rel.NumRows())
	}
	if !rel.Schema.Has("headlight") || !rel.Schema.Has("t") {
		t.Fatalf("schema = %s", rel.Schema)
	}
}

func TestRender(t *testing.T) {
	tb, err := lightsScenario()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tb.Render(&sb, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"headlight", "outlier v=800", "left on", "(high,steady)"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
	// Truncated render mentions the remainder.
	sb.Reset()
	if err := tb.Render(&sb, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "more states") {
		t.Fatalf("truncated render:\n%s", sb.String())
	}
}

func TestBuildNilAndBadInputs(t *testing.T) {
	tb, err := Build(nil, seqOf("a", [2]interface{}{1.0, "x"}))
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 1 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	bad := relation.New(relation.NewSchema(relation.Column{Name: "x", Kind: relation.KindInt}))
	if _, err := Build(bad); err == nil {
		t.Fatal("bad schema must fail")
	}
	empty, err := Build()
	if err != nil {
		t.Fatal(err)
	}
	if empty.NumRows() != 0 {
		t.Fatal("empty build must be empty")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		2:     "2",
		2.5:   "2.5",
		4.25:  "4.25",
		7.22:  "7.22",
		0.125: "0.125",
	}
	for f, want := range cases {
		if got := trimFloat(f); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", f, got, want)
		}
	}
}

func TestForwardFillOnlyChangesAtOccurrencesProperty(t *testing.T) {
	// Property: a signal's column changes value only at rows whose
	// timestamp is one of the signal's occurrence times.
	occurrences := map[float64]bool{}
	a := relation.New(rules.SequenceSchema())
	for i := 0; i < 37; i++ {
		tt := float64(i*i%91) / 7
		occurrences[tt] = true
		a.Append(relation.Row{
			relation.Float(tt), relation.Str("a"),
			relation.Str(string(rune('A' + i%5))), relation.Str("FC"),
		})
	}
	b := relation.New(rules.SequenceSchema())
	for i := 0; i < 23; i++ {
		b.Append(relation.Row{
			relation.Float(float64(i)), relation.Str("b"),
			relation.Str(string(rune('x' + i%3))), relation.Str("FC"),
		})
	}
	tb, err := Build(a, b)
	if err != nil {
		t.Fatal(err)
	}
	col, err := tb.Column("a")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < tb.NumRows(); i++ {
		if col[i] != col[i-1] && !occurrences[tb.Times[i]] {
			t.Fatalf("column a changed at t=%v which is not an occurrence", tb.Times[i])
		}
	}
}
