// Package staterep builds the state representation of Sec. 4.3
// (Table 4): all homogenized signal sequences K_α ∪ K_β ∪ K_γ and the
// meta sequences W merge into one wide table with a column per signal
// type, a row per occurrence timestamp, and forward-filled values — the
// "state of all signal instances at a time" that downstream Data Mining
// consumes directly.
package staterep

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"ivnt/internal/relation"
	"ivnt/internal/trace"
)

// Unknown fills cells before a signal's first occurrence.
const Unknown = "-"

// Table is the state representation.
type Table struct {
	// Times are the row timestamps, ascending.
	Times []float64
	// Signals are the column names (signal ids), in the order given to
	// Build.
	Signals []string
	// Cells[i][j] is the value of Signals[j] at Times[i], forward
	// filled.
	Cells [][]string
}

// Build merges K_s-shaped sequences into the state representation. The
// column set is the union of signal ids across sequences, ordered by
// first appearance in seqs (then alphabetically within a sequence).
func Build(seqs ...*relation.Relation) (*Table, error) {
	type ev struct {
		t   float64
		sid string
		v   string
		seq int // merge priority for equal timestamps
	}
	var events []ev
	var signals []string
	seen := map[string]bool{}
	for si, seq := range seqs {
		if seq == nil {
			continue
		}
		tIdx := seq.Schema.Index(trace.ColT)
		sIdx := seq.Schema.Index(trace.ColSID)
		vIdx := seq.Schema.Index(trace.ColV)
		if tIdx < 0 || sIdx < 0 || vIdx < 0 {
			return nil, fmt.Errorf("staterep: sequence %d lacks t/sid/v (%s)", si, seq.Schema)
		}
		var local []string
		for _, p := range seq.Partitions {
			for _, r := range p {
				sid := r[sIdx].AsString()
				if !seen[sid] {
					seen[sid] = true
					local = append(local, sid)
				}
				events = append(events, ev{
					t:   r[tIdx].AsFloat(),
					sid: sid,
					v:   r[vIdx].AsString(),
					seq: si,
				})
			}
		}
		sort.Strings(local)
		signals = append(signals, local...)
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return events[i].sid < events[j].sid
	})

	colIdx := make(map[string]int, len(signals))
	for i, s := range signals {
		colIdx[s] = i
	}
	tbl := &Table{Signals: signals}
	last := make([]string, len(signals))
	for i := range last {
		last[i] = Unknown
	}
	i := 0
	for i < len(events) {
		t := events[i].t
		// Apply every event at this timestamp, then snapshot (lag
		// semantics: a row is the state AT the time, so simultaneous
		// updates coalesce).
		for i < len(events) && events[i].t == t {
			last[colIdx[events[i].sid]] = events[i].v
			i++
		}
		row := make([]string, len(signals))
		copy(row, last)
		tbl.Times = append(tbl.Times, t)
		tbl.Cells = append(tbl.Cells, row)
	}
	return tbl, nil
}

// NumRows returns the number of states.
func (tb *Table) NumRows() int { return len(tb.Times) }

// Row returns state i as a signal→value map.
func (tb *Table) Row(i int) map[string]string {
	out := make(map[string]string, len(tb.Signals))
	for j, s := range tb.Signals {
		out[s] = tb.Cells[i][j]
	}
	return out
}

// Column returns the value series of one signal, or an error for
// unknown signals.
func (tb *Table) Column(sid string) ([]string, error) {
	for j, s := range tb.Signals {
		if s == sid {
			out := make([]string, len(tb.Cells))
			for i := range tb.Cells {
				out[i] = tb.Cells[i][j]
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("staterep: no signal %q", sid)
}

// ToRelation renders the table as a relation (t + one string column per
// signal) for further engine processing.
func (tb *Table) ToRelation() *relation.Relation {
	cols := make([]relation.Column, 0, len(tb.Signals)+1)
	cols = append(cols, relation.Column{Name: trace.ColT, Kind: relation.KindFloat})
	for _, s := range tb.Signals {
		cols = append(cols, relation.Column{Name: s, Kind: relation.KindString})
	}
	rel := relation.New(relation.NewSchema(cols...))
	for i, t := range tb.Times {
		row := make(relation.Row, 0, len(cols))
		row = append(row, relation.Float(t))
		for _, v := range tb.Cells[i] {
			row = append(row, relation.Str(v))
		}
		rel.Append(row)
	}
	return rel
}

// StateKey renders row i as a canonical composite state string (used by
// transition graphs and anomaly scoring).
func (tb *Table) StateKey(i int) string {
	return strings.Join(tb.Cells[i], "\x1f")
}

// Render writes the table as aligned text, Table-4 style. maxRows ≤ 0
// renders everything.
func (tb *Table) Render(w io.Writer, maxRows int) error {
	n := len(tb.Times)
	if maxRows > 0 && maxRows < n {
		n = maxRows
	}
	widths := make([]int, len(tb.Signals)+1)
	widths[0] = len("t")
	header := append([]string{"t"}, tb.Signals...)
	for j, h := range header {
		if len(h) > widths[j] {
			widths[j] = len(h)
		}
	}
	rows := make([][]string, n)
	for i := 0; i < n; i++ {
		row := make([]string, len(tb.Signals)+1)
		row[0] = trimFloat(tb.Times[i])
		copy(row[1:], tb.Cells[i])
		for j, c := range row {
			if len(c) > widths[j] {
				widths[j] = len(c)
			}
		}
		rows[i] = row
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for j, c := range cells {
			if j > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[j]-len(c)))
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := writeRow(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	if n < len(tb.Times) {
		_, err := fmt.Fprintf(w, "... (%d more states)\n", len(tb.Times)-n)
		return err
	}
	return nil
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%.3f", f)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
