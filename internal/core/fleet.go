package core

import (
	"context"
	"fmt"
	"sort"

	"ivnt/internal/classify"
	"ivnt/internal/trace"
)

// FleetResult aggregates one parameterization applied to many journeys
// — the fleet-scale workflow of Fig. 1 ("500 cars produce 1.5 TB per
// day"). Besides the per-journey results it surfaces cross-journey
// inconsistencies, which are diagnostic signals in their own right: a
// signal that classifies as numeric in one journey and binary in
// another is either misdocumented or misbehaving.
type FleetResult struct {
	// Journeys holds the per-journey pipeline results, input order.
	Journeys []*Result
	// Branches maps signal id to the set of branches it classified
	// into across journeys (sorted, deduplicated).
	Branches map[string][]classify.Branch
	// Unstable lists signals whose classification differed across
	// journeys, sorted.
	Unstable []string
	// GatewayMismatches lists (journey index, signal) pairs where
	// gateway routes disagreed — potential gateway faults.
	GatewayMismatches []FleetGatewayMismatch
	// TotalKsRows and TotalReducedRows sum across journeys.
	TotalKsRows      int
	TotalReducedRows int
}

// FleetGatewayMismatch locates one gateway disagreement.
type FleetGatewayMismatch struct {
	Journey  int
	SID      string
	Channels []string
}

// RunFleet runs the framework on every journey and aggregates. The
// journeys run sequentially (each already parallelizes internally);
// an error in any journey aborts the fleet run.
func (f *Framework) RunFleet(ctx context.Context, journeys []*trace.Trace) (*FleetResult, error) {
	if len(journeys) == 0 {
		return nil, fmt.Errorf("core: fleet run without journeys")
	}
	fr := &FleetResult{Branches: map[string][]classify.Branch{}}
	branchSets := map[string]map[classify.Branch]bool{}
	for ji, tr := range journeys {
		res, err := f.RunTrace(ctx, tr)
		if err != nil {
			return nil, fmt.Errorf("core: journey %d: %w", ji, err)
		}
		fr.Journeys = append(fr.Journeys, res)
		fr.TotalKsRows += res.KsRows
		fr.TotalReducedRows += res.ReduceStats.RowsOut
		for _, sig := range res.Signals {
			set := branchSets[sig.SID]
			if set == nil {
				set = map[classify.Branch]bool{}
				branchSets[sig.SID] = set
			}
			set[sig.Branch] = true
		}
		for _, red := range res.Reduced {
			if len(red.Gateway.Mismatched) > 0 {
				fr.GatewayMismatches = append(fr.GatewayMismatches, FleetGatewayMismatch{
					Journey:  ji,
					SID:      red.SID,
					Channels: red.Gateway.Mismatched,
				})
			}
		}
	}
	for sid, set := range branchSets {
		branches := make([]classify.Branch, 0, len(set))
		for b := range set {
			branches = append(branches, b)
		}
		sort.Slice(branches, func(i, j int) bool { return branches[i] < branches[j] })
		fr.Branches[sid] = branches
		if len(branches) > 1 {
			fr.Unstable = append(fr.Unstable, sid)
		}
	}
	sort.Strings(fr.Unstable)
	return fr, nil
}
