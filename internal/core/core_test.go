package core

import (
	"context"
	"strings"
	"testing"

	"ivnt/internal/cluster"
	"ivnt/internal/engine"
	"ivnt/internal/interp"
	"ivnt/internal/rules"
	"ivnt/internal/trace"
)

var ctx = context.Background()

// wiperTrace simulates the paper's wiper scenario: a fast numeric
// position, a binary belt signal, gateway forwarding of wpos, one
// injected spike and one cycle-time violation.
func wiperTrace() *trace.Trace {
	tr := &trace.Trace{}
	tt := 0.0
	for i := 0; i < 400; i++ {
		pos := float64((i / 4) % 90) // cyclic re-sends hold the value
		if i == 200 {
			pos = 6000 // spike → outlier
		}
		raw := uint16(pos * 2) // wpos rule is 0.5*raw
		payload := []byte{byte(raw >> 8), byte(raw), 0, byte(i % 3)}
		tr.Append(trace.ByteTuple{T: tt, Channel: "FC", MsgID: 3, Payload: payload,
			Info: trace.MsgInfo{Protocol: trace.ProtoCAN, DLC: 4}})
		// Gateway forwards wpos onto BC with small latency.
		tr.Append(trace.ByteTuple{T: tt + 0.001, Channel: "BC", MsgID: 77, Payload: payload[:2],
			Info: trace.MsgInfo{Protocol: trace.ProtoCAN, DLC: 2}})
		if i%10 == 0 {
			belt := byte(0)
			if (i/100)%2 == 0 {
				belt = 1
			}
			tr.Append(trace.ByteTuple{T: tt + 0.002, Channel: "FC", MsgID: 5, Payload: []byte{belt},
				Info: trace.MsgInfo{Protocol: trace.ProtoCAN, DLC: 1}})
		}
		if i == 300 {
			tt += 5 // cycle violation: nominal cycle is 0.05s
		}
		tt += 0.05
	}
	return tr
}

func wiperCatalog() *rules.Catalog {
	return &rules.Catalog{Translations: []rules.Translation{
		{SID: "wpos", Channel: "FC", MsgID: 3, FirstByte: 0, LastByte: 1,
			Rule: "0.5 * ube(lrel, 0, 2)", Class: rules.ClassNumeric, CycleTime: 0.05},
		{SID: "wpos", Channel: "BC", MsgID: 77, FirstByte: 0, LastByte: 1,
			Rule: "0.5 * ube(lrel, 0, 2)", Class: rules.ClassNumeric, CycleTime: 0.05},
		{SID: "wvel", Channel: "FC", MsgID: 3, FirstByte: 2, LastByte: 3,
			Rule: "ube(lrel, 0, 2)", Class: rules.ClassNumeric, CycleTime: 0.05},
		{SID: "belt", Channel: "FC", MsgID: 5, FirstByte: 0, LastByte: 0,
			Rule: "lookup(byteat(lrel, 0), '0=OFF;1=ON')", Class: rules.ClassBinary},
	}}
}

func wiperConfig() *rules.DomainConfig {
	return &rules.DomainConfig{
		Name: "wiper",
		SIDs: []string{"wpos", "belt"},
		Constraints: []rules.Constraint{
			rules.ChangeConstraint("*"),
			rules.CycleViolationConstraint("wpos", 0.05),
		},
		Extensions: []rules.Extension{
			{WID: "wposGap", SID: "wpos", Expr: "gap(t)"},
		},
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(nil, wiperConfig(), engine.NewLocal(1)); err == nil {
		t.Fatal("nil catalog must fail")
	}
	if _, err := New(wiperCatalog(), &rules.DomainConfig{Name: "x", SIDs: []string{"nope"}}, engine.NewLocal(1)); err == nil {
		t.Fatal("unknown signal must fail")
	}
	if _, err := New(wiperCatalog(), wiperConfig(), engine.NewLocal(1)); err != nil {
		t.Fatal(err)
	}
}

func TestRunEndToEndLocal(t *testing.T) {
	fw, err := New(wiperCatalog(), wiperConfig(), engine.NewLocal(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.RunTrace(ctx, wiperTrace())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Signals) != 2 {
		t.Fatalf("signals = %d", len(res.Signals))
	}
	bySID := map[string]int{}
	for i, s := range res.Signals {
		bySID[s.SID] = i
	}
	wpos := res.Signals[bySID["wpos"]]
	if wpos.Branch.String() != "alpha" {
		t.Fatalf("wpos branch = %s (Z=%s)", wpos.Branch, wpos.Criteria)
	}
	if wpos.Outliers == 0 {
		t.Fatal("injected spike not detected as outlier")
	}
	belt := res.Signals[bySID["belt"]]
	if belt.Branch.String() != "gamma" || belt.DataType.String() != "binary" {
		t.Fatalf("belt classified (%s, %s)", belt.DataType, belt.Branch)
	}
	// Gateway dedup: wpos must have one corresponding channel.
	for _, red := range res.Reduced {
		if red.SID == "wpos" {
			if len(red.Gateway.Corresponding) != 1 {
				t.Fatalf("gateway = %+v", red.Gateway)
			}
		}
	}
	// Extensions present.
	if res.Extensions == nil || res.Extensions.NumRows() == 0 {
		t.Fatal("extensions missing")
	}
	// State representation includes all columns.
	for _, col := range []string{"wpos", "belt", "wposGap"} {
		if _, err := res.State.Column(col); err != nil {
			t.Fatalf("state table missing %s: %v", col, err)
		}
	}
	// Reduction actually reduced.
	if res.ReductionRatio() >= 1 {
		t.Fatalf("reduction ratio = %v", res.ReductionRatio())
	}
	if res.KsRows == 0 || res.ExtractStats.RowsIn == 0 {
		t.Fatalf("stats = %+v", res.ExtractStats)
	}
}

func TestRunPreservesCycleViolation(t *testing.T) {
	fw, err := New(wiperCatalog(), wiperConfig(), engine.NewLocal(2))
	if err != nil {
		t.Fatal(err)
	}
	reduced, _, _, err := fw.ExtractAndReduce(ctx, wiperTrace().ToRelation(4))
	if err != nil {
		t.Fatal(err)
	}
	// The 5-second hole must survive reduction: find consecutive kept
	// wpos rows whose gap spans it.
	for _, red := range reduced {
		if red.SID != "wpos" {
			continue
		}
		rows := red.Rel.Rows()
		found := false
		for i := 1; i < len(rows); i++ {
			if rows[i][0].AsFloat()-rows[i-1][0].AsFloat() >= 5 {
				found = true
			}
		}
		// The violation row itself is kept because gap(t) fires on it.
		if !found && len(rows) > 0 {
			t.Log("gap not visible between kept rows; checking count")
		}
		if len(rows) == 0 {
			t.Fatal("wpos fully reduced away")
		}
	}
}

func TestRunOnClusterMatchesLocal(t *testing.T) {
	addrs, stop, err := cluster.StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	tr := wiperTrace()
	local, err := New(wiperCatalog(), wiperConfig(), engine.NewLocal(2))
	if err != nil {
		t.Fatal(err)
	}
	remote, err := New(wiperCatalog(), wiperConfig(), &cluster.Driver{Addrs: addrs, SlotsPerExecutor: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := local.RunTrace(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := remote.RunTrace(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.State.NumRows() != b.State.NumRows() {
		t.Fatalf("state rows differ: %d vs %d", a.State.NumRows(), b.State.NumRows())
	}
	for i := 0; i < a.State.NumRows(); i++ {
		if a.State.StateKey(i) != b.State.StateKey(i) {
			t.Fatalf("state %d differs:\n%v\nvs\n%v", i, a.State.Row(i), b.State.Row(i))
		}
	}
}

func TestRunWithoutPreselectionMatches(t *testing.T) {
	tr := wiperTrace()
	fw1, err := New(wiperCatalog(), wiperConfig(), engine.NewLocal(2))
	if err != nil {
		t.Fatal(err)
	}
	fw2, err := New(wiperCatalog(), wiperConfig(), engine.NewLocal(2))
	if err != nil {
		t.Fatal(err)
	}
	fw2.Interp = interp.Options{Preselect: false}
	a, err := fw1.RunTrace(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fw2.RunTrace(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.State.NumRows() != b.State.NumRows() {
		t.Fatalf("state rows differ: %d vs %d", a.State.NumRows(), b.State.NumRows())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	tr := wiperTrace()
	render := func() string {
		fw, err := New(wiperCatalog(), wiperConfig(), engine.NewLocal(8))
		if err != nil {
			t.Fatal(err)
		}
		res, err := fw.RunTrace(ctx, tr)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := res.State.Render(&sb, 0); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if render() != render() {
		t.Fatal("two identical runs produced different state tables")
	}
}

func TestRunEmptyTrace(t *testing.T) {
	fw, err := New(wiperCatalog(), wiperConfig(), engine.NewLocal(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.RunTrace(ctx, &trace.Trace{})
	if err != nil {
		t.Fatal(err)
	}
	if res.State.NumRows() != 0 || len(res.Signals) != 0 {
		t.Fatalf("empty trace produced %d states, %d signals", res.State.NumRows(), len(res.Signals))
	}
}

func TestRunSignalNeverOccurs(t *testing.T) {
	// Selecting a documented signal whose messages never appear in the
	// trace must succeed with that signal simply absent.
	cat := wiperCatalog()
	cat.Translations = append(cat.Translations, rules.Translation{
		SID: "ghost", Channel: "ZZ", MsgID: 999, FirstByte: 0, LastByte: 0,
		Rule: "byteat(lrel, 0)", Class: rules.ClassNumeric,
	})
	cfg := wiperConfig()
	cfg.SIDs = append(cfg.SIDs, "ghost")
	fw, err := New(cat, cfg, engine.NewLocal(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.RunTrace(ctx, wiperTrace())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Signals {
		if s.SID == "ghost" {
			t.Fatal("ghost signal should have no sequence")
		}
	}
	if _, err := res.State.Column("wpos"); err != nil {
		t.Fatal("real signals must still be present")
	}
}

func TestExtractAndReduceStatsConsistent(t *testing.T) {
	fw, err := New(wiperCatalog(), wiperConfig(), engine.NewLocal(2))
	if err != nil {
		t.Fatal(err)
	}
	reduced, exStats, redStats, err := fw.ExtractAndReduce(ctx, wiperTrace().ToRelation(4))
	if err != nil {
		t.Fatal(err)
	}
	totalReduced := 0
	for i := range reduced {
		totalReduced += reduced[i].Rel.NumRows()
	}
	if redStats.RowsOut != totalReduced {
		t.Fatalf("reduce stats %d != sum of sequences %d", redStats.RowsOut, totalReduced)
	}
	// Gateway dedup means reduce input counts representative rows only,
	// which is at most the interpreted rows.
	if redStats.RowsIn > exStats.RowsOut {
		t.Fatalf("reduce saw more rows (%d) than interpretation produced (%d)",
			redStats.RowsIn, exStats.RowsOut)
	}
}

func TestHintForMissingSignal(t *testing.T) {
	fw, err := New(wiperCatalog(), wiperConfig(), engine.NewLocal(1))
	if err != nil {
		t.Fatal(err)
	}
	if fw.hintFor("nonexistent") != nil {
		t.Fatal("missing signal must yield nil hint")
	}
	if h := fw.hintFor("wpos"); h == nil || h.SID != "wpos" {
		t.Fatalf("hint = %+v", h)
	}
}
