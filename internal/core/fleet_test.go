package core

import (
	"testing"

	"ivnt/internal/engine"
	"ivnt/internal/trace"
)

func TestRunFleetAggregates(t *testing.T) {
	fw, err := New(wiperCatalog(), wiperConfig(), engine.NewLocal(2))
	if err != nil {
		t.Fatal(err)
	}
	journeys := []*trace.Trace{wiperTrace(), wiperTrace(), wiperTrace()}
	fr, err := fw.RunFleet(ctx, journeys)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Journeys) != 3 {
		t.Fatalf("journeys = %d", len(fr.Journeys))
	}
	if fr.TotalKsRows != 3*fr.Journeys[0].KsRows {
		t.Fatalf("total K_s = %d", fr.TotalKsRows)
	}
	// Identical journeys: no instability, consistent branches.
	if len(fr.Unstable) != 0 {
		t.Fatalf("unstable = %v", fr.Unstable)
	}
	if got := fr.Branches["wpos"]; len(got) != 1 || got[0].String() != "alpha" {
		t.Fatalf("wpos branches = %v", got)
	}
	if len(fr.GatewayMismatches) != 0 {
		t.Fatalf("mismatches = %v", fr.GatewayMismatches)
	}
}

func TestRunFleetDetectsInstabilityAndMismatch(t *testing.T) {
	fw, err := New(wiperCatalog(), wiperConfig(), engine.NewLocal(2))
	if err != nil {
		t.Fatal(err)
	}
	// Journey A: normal. Journey B: wpos frozen to a constant (branch
	// degenerates to γ) and the gateway copy corrupted (mismatch).
	normal := wiperTrace()
	frozen := &trace.Trace{}
	tt := 0.0
	for i := 0; i < 200; i++ {
		payload := []byte{0x00, 0x5A, 0x00, 0x01}
		frozen.Append(trace.ByteTuple{T: tt, Channel: "FC", MsgID: 3, Payload: payload,
			Info: trace.MsgInfo{Protocol: trace.ProtoCAN, DLC: 4}})
		// Gateway copy with a corrupted byte: values disagree.
		bad := []byte{0x00, byte(0x5A + i%2)}
		frozen.Append(trace.ByteTuple{T: tt + 0.001, Channel: "BC", MsgID: 77, Payload: bad,
			Info: trace.MsgInfo{Protocol: trace.ProtoCAN, DLC: 2}})
		if i%10 == 0 {
			frozen.Append(trace.ByteTuple{T: tt + 0.002, Channel: "FC", MsgID: 5,
				Payload: []byte{byte(i / 100 % 2)},
				Info:    trace.MsgInfo{Protocol: trace.ProtoCAN, DLC: 1}})
		}
		tt += 0.05
	}
	fr, err := fw.RunFleet(ctx, []*trace.Trace{normal, frozen})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, u := range fr.Unstable {
		if u == "wpos" {
			found = true
		}
	}
	if !found {
		t.Fatalf("wpos should be unstable across journeys: branches=%v unstable=%v",
			fr.Branches["wpos"], fr.Unstable)
	}
	mismatch := false
	for _, m := range fr.GatewayMismatches {
		if m.SID == "wpos" && m.Journey == 1 {
			mismatch = true
		}
	}
	if !mismatch {
		t.Fatalf("corrupted gateway route not flagged: %v", fr.GatewayMismatches)
	}
}

func TestRunFleetEmpty(t *testing.T) {
	fw, err := New(wiperCatalog(), wiperConfig(), engine.NewLocal(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.RunFleet(ctx, nil); err == nil {
		t.Fatal("empty fleet must fail")
	}
}
