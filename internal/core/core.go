// Package core assembles the paper's contribution end to end: the
// fully automated, parameterizable preprocessing framework of
// Algorithm 1. Given a raw trace K_b, a rules catalog (U_rel) and a
// domain configuration (U_comb selection, constraints C, extensions E,
// thresholds Z), it produces the homogeneous, reduced, interpreted
// output R_out and its state representation — on any engine.Executor,
// local or distributed.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"ivnt/internal/branch"
	"ivnt/internal/engine"
	"ivnt/internal/extend"
	"ivnt/internal/interp"
	"ivnt/internal/reduce"
	"ivnt/internal/relation"
	"ivnt/internal/rules"
	"ivnt/internal/staterep"
	"ivnt/internal/trace"
)

// Framework is a parameterized instance of the preprocessing pipeline:
// parameterize once, run on every journey.
type Framework struct {
	Catalog *rules.Catalog
	Config  *rules.DomainConfig
	Exec    engine.Executor
	// Interp tunes the extraction stage (preselection toggle).
	Interp interp.Options
}

// New validates the parameterization and returns a ready framework.
func New(catalog *rules.Catalog, cfg *rules.DomainConfig, exec engine.Executor) (*Framework, error) {
	if catalog == nil || cfg == nil || exec == nil {
		return nil, fmt.Errorf("core: catalog, config and executor are required")
	}
	if err := catalog.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	if _, err := catalog.Select(cfg.SIDs...); err != nil {
		return nil, err
	}
	return &Framework{Catalog: catalog, Config: cfg, Exec: exec, Interp: interp.DefaultOptions()}, nil
}

// Result is R_out plus everything a caller may want to inspect.
type Result struct {
	// State is the merged, forward-filled state representation
	// (Sec. 4.3).
	State *staterep.Table
	// Signals are the per-signal homogenized outputs, sorted by id.
	Signals []*branch.Result
	// Reduced keeps the intermediate reduction results (gateway
	// bookkeeping, per-signal stats).
	Reduced []reduce.Reduced
	// Extensions is the concatenated W relation (nil when the domain
	// defines no extensions).
	Extensions *relation.Relation
	// ExtractStats are the engine statistics of lines 3–6;
	// ReduceStats aggregates lines 8–11.
	ExtractStats engine.Stats
	ReduceStats  engine.Stats
	// KsRows counts interpreted signal instances before reduction.
	KsRows int
}

// partitions picks the stage partition count.
func (f *Framework) partitions() int {
	if f.Config.Partitions > 0 {
		return f.Config.Partitions
	}
	return runtime.GOMAXPROCS(0) * 2
}

// ExtractAndReduce runs Algorithm 1 lines 3–11 (the part the paper's
// evaluation measures): interpretation of the selected signals followed
// by signal splitting, gateway dedup and constraint reduction.
func (f *Framework) ExtractAndReduce(ctx context.Context, kb *relation.Relation) ([]reduce.Reduced, engine.Stats, engine.Stats, error) {
	ucomb, err := f.Catalog.Select(f.Config.SIDs...)
	if err != nil {
		return nil, engine.Stats{}, engine.Stats{}, err
	}
	opts := f.Interp
	if !opts.Preselect && len(opts.FullCatalog) == 0 {
		opts.FullCatalog = f.Catalog.Translations
	}
	ks, exStats, err := interp.Extract(ctx, f.Exec, kb, ucomb, opts)
	if err != nil {
		return nil, engine.Stats{}, engine.Stats{}, err
	}
	reduced, err := reduce.Run(ctx, f.Exec, ks, f.Config)
	if err != nil {
		return nil, engine.Stats{}, engine.Stats{}, err
	}
	var redStats engine.Stats
	for i := range reduced {
		redStats.Add(reduced[i].Stats)
	}
	return reduced, exStats, redStats, nil
}

// Run executes the full pipeline on a K_b relation: extraction,
// reduction, extension, type-dependent processing and the state
// representation. Per-signal processing fans out across GOMAXPROCS
// goroutines — the driver-side parallelism over Σ*.
func (f *Framework) Run(ctx context.Context, kb *relation.Relation) (*Result, error) {
	reduced, exStats, redStats, err := f.ExtractAndReduce(ctx, kb)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Reduced:      reduced,
		ExtractStats: exStats,
		ReduceStats:  redStats,
		KsRows:       exStats.RowsOut,
	}

	type sigOut struct {
		idx int
		br  *branch.Result
		w   *relation.Relation
		err error
	}
	outs := make([]sigOut, len(reduced))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := range reduced {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			red := &reduced[i]
			hint := f.hintFor(red.SID)
			br, err := branch.Process(red.SID, red.Rel, hint, f.Config)
			if err != nil {
				outs[i] = sigOut{idx: i, err: err}
				return
			}
			w, err := extend.Run(ctx, f.Exec, red.SID, red.Rel, f.Config)
			outs[i] = sigOut{idx: i, br: br, w: w, err: err}
		}(i)
	}
	wg.Wait()

	var seqs []*relation.Relation
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		res.Signals = append(res.Signals, o.br)
		seqs = append(seqs, o.br.Rel)
		if o.w == nil {
			continue
		}
		if res.Extensions == nil {
			res.Extensions = o.w
		} else {
			res.Extensions, err = res.Extensions.Concat(o.w)
			if err != nil {
				return nil, err
			}
		}
	}
	if res.Extensions != nil {
		seqs = append(seqs, res.Extensions)
	}
	res.State, err = staterep.Build(seqs...)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// RunTrace is Run over an in-memory trace, handling partitioning.
func (f *Framework) RunTrace(ctx context.Context, tr *trace.Trace) (*Result, error) {
	return f.Run(ctx, tr.ToRelation(f.partitions()))
}

// hintFor returns the first catalog tuple for a signal (hints are
// per-signal, identical across routes).
func (f *Framework) hintFor(sid string) *rules.Translation {
	ts := f.Catalog.Lookup(sid)
	if len(ts) == 0 {
		return nil
	}
	return &ts[0]
}

// ReductionRatio reports rows-in versus rows-out of the reduction
// stage, the redundancy-exploitation headline of Sec. 1.
func (r *Result) ReductionRatio() float64 {
	if r.ReduceStats.RowsIn == 0 {
		return 1
	}
	return float64(r.ReduceStats.RowsOut) / float64(r.ReduceStats.RowsIn)
}
