package transition

import (
	"strings"
	"testing"

	"ivnt/internal/staterep"
)

func table(signals []string, rows [][]string) *staterep.Table {
	tb := &staterep.Table{Signals: signals}
	for i, r := range rows {
		tb.Times = append(tb.Times, float64(i))
		tb.Cells = append(tb.Cells, r)
	}
	return tb
}

// cycleWithGlitch: A→B→A→B ... with a single A→C→A excursion.
func cycleWithGlitch() *staterep.Table {
	rows := [][]string{}
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			rows = append(rows, []string{"A"})
		} else {
			rows = append(rows, []string{"B"})
		}
	}
	rows = append(rows, []string{"C"})
	rows = append(rows, []string{"A"})
	rows = append(rows, []string{"B"})
	return table([]string{"state"}, rows)
}

func TestBuildCountsTransitions(t *testing.T) {
	g, err := Build(cycleWithGlitch())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 3 {
		t.Fatalf("states = %d", g.NumStates())
	}
	// A=0, B=1, C=2 by first appearance.
	if g.Count(0, 1) < 9 {
		t.Fatalf("A→B count = %d", g.Count(0, 1))
	}
	if g.Count(1, 2) != 1 || g.Count(2, 0) != 1 {
		t.Fatalf("glitch counts = %d, %d", g.Count(1, 2), g.Count(2, 0))
	}
	if g.Transitions != 22 {
		t.Fatalf("total transitions = %d", g.Transitions)
	}
}

func TestSelfLoopsIgnored(t *testing.T) {
	tb := table([]string{"s"}, [][]string{{"A"}, {"A"}, {"A"}, {"B"}})
	g, err := Build(tb)
	if err != nil {
		t.Fatal(err)
	}
	if g.Transitions != 1 {
		t.Fatalf("repeated identical states must not create edges: %d", g.Transitions)
	}
}

func TestRareFindsGlitch(t *testing.T) {
	g, err := Build(cycleWithGlitch())
	if err != nil {
		t.Fatal(err)
	}
	// B→C is rare (count 1, prob 0.1); C→A has count 1 but prob 1.0,
	// so the probability threshold excludes it.
	rare := g.Rare(1, 0.2)
	if len(rare) != 1 {
		t.Fatalf("rare = %+v", rare)
	}
	if both := g.Rare(1, 1.0); len(both) != 2 {
		t.Fatalf("rare with maxProb 1 = %+v", both)
	}
	found := false
	for _, tr := range rare {
		if tr.FromLabel == "B" && tr.ToLabel == "C" {
			found = true
			if tr.Count != 1 {
				t.Fatalf("B→C count = %d", tr.Count)
			}
		}
	}
	if !found {
		t.Fatalf("B→C missing from rare set: %+v", rare)
	}
	_ = found
}

func TestRareProbAndCountThresholds(t *testing.T) {
	g, err := Build(cycleWithGlitch())
	if err != nil {
		t.Fatal(err)
	}
	// With maxProb 0.01 nothing qualifies (glitch edges have higher
	// probability).
	if rare := g.Rare(1, 0.01); len(rare) != 0 {
		t.Fatalf("rare with tiny prob = %+v", rare)
	}
	if rare := g.Rare(0, 1); len(rare) != 0 {
		t.Fatalf("rare with count 0 = %+v", rare)
	}
}

func TestPathToWalksPredecessors(t *testing.T) {
	g, err := Build(cycleWithGlitch())
	if err != nil {
		t.Fatal(err)
	}
	// Path to C (index 2): chronological chain ... A → B → C.
	path := g.PathTo(2, 3)
	if len(path) != 3 {
		t.Fatalf("path = %v", path)
	}
	if path[len(path)-1] != 2 || path[len(path)-2] != 1 || path[0] != 0 {
		t.Fatalf("path = %v, want [0 1 2]", path)
	}
	if p := g.PathTo(-1, 3); p != nil {
		t.Fatal("invalid target must yield nil")
	}
	if p := g.PathTo(2, 1); len(p) != 1 {
		t.Fatalf("maxLen 1 = %v", p)
	}
}

func TestBuildWithLabelSignals(t *testing.T) {
	tb := table([]string{"speed", "light"}, [][]string{
		{"high", "off"}, {"high", "on"}, {"low", "on"},
	})
	g, err := Build(tb, "light")
	if err != nil {
		t.Fatal(err)
	}
	if g.Labels[0] != "light=off" {
		t.Fatalf("label = %q", g.Labels[0])
	}
	if _, err := Build(tb, "nope"); err == nil {
		t.Fatal("unknown label signal must fail")
	}
}

func TestWriteDOT(t *testing.T) {
	g, err := Build(cycleWithGlitch())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := g.WriteDOT(&sb, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"digraph states", "s0 -> s1", "color=red"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("DOT missing %q:\n%s", frag, out)
		}
	}
}

func TestProb(t *testing.T) {
	g, err := Build(cycleWithGlitch())
	if err != nil {
		t.Fatal(err)
	}
	// From B: 9× to A, 1× to C.
	if p := g.Prob(1, 2); p != 0.1 {
		t.Fatalf("P(B→C) = %v", p)
	}
	if p := g.Prob(2, 1); p != 0 {
		t.Fatalf("P(C→B) = %v", p)
	}
}
