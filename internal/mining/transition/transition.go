// Package transition builds transition graphs over the state
// representation (Sec. 4.4): every state row links to its consequent
// row; edge weights count how often each transition occurred. Rare
// transitions indicate potential errors, and path analysis isolates the
// event chains leading into them.
package transition

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"ivnt/internal/staterep"
)

// Graph is an aggregated state transition graph.
type Graph struct {
	// States are the distinct composite states, in first-appearance
	// order; Labels renders them readably.
	States []string
	Labels []string
	index  map[string]int
	// counts[from][to] is the number of observed transitions.
	counts map[int]map[int]int
	// outTotal[from] sums outgoing transitions.
	outTotal map[int]int
	// firstSeen[state] is the first row index the state appeared at.
	firstSeen map[int]int
	// Transitions is the total edge-traversal count.
	Transitions int
}

// Build aggregates the state table into a graph. Label columns
// (optional) restrict the human-readable label to interesting signals;
// the state identity always uses all columns.
func Build(tb *staterep.Table, labelSignals ...string) (*Graph, error) {
	g := &Graph{
		index:     map[string]int{},
		counts:    map[int]map[int]int{},
		outTotal:  map[int]int{},
		firstSeen: map[int]int{},
	}
	labelIdx := make([]int, 0, len(labelSignals))
	for _, s := range labelSignals {
		found := -1
		for j, sig := range tb.Signals {
			if sig == s {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("transition: no signal %q in state table", s)
		}
		labelIdx = append(labelIdx, found)
	}
	stateOf := func(i int) int {
		key := tb.StateKey(i)
		if id, ok := g.index[key]; ok {
			return id
		}
		id := len(g.States)
		g.index[key] = id
		g.States = append(g.States, key)
		g.Labels = append(g.Labels, label(tb, i, labelIdx))
		g.firstSeen[id] = i
		return id
	}
	prev := -1
	for i := 0; i < tb.NumRows(); i++ {
		cur := stateOf(i)
		if prev >= 0 && prev != cur {
			m := g.counts[prev]
			if m == nil {
				m = map[int]int{}
				g.counts[prev] = m
			}
			m[cur]++
			g.outTotal[prev]++
			g.Transitions++
		}
		prev = cur
	}
	return g, nil
}

func label(tb *staterep.Table, row int, labelIdx []int) string {
	if len(labelIdx) == 0 {
		return strings.Join(tb.Cells[row], " | ")
	}
	parts := make([]string, len(labelIdx))
	for k, j := range labelIdx {
		parts[k] = tb.Signals[j] + "=" + tb.Cells[row][j]
	}
	return strings.Join(parts, " ")
}

// NumStates returns the number of distinct states.
func (g *Graph) NumStates() int { return len(g.States) }

// Count returns the observed count of the transition from→to (by state
// index).
func (g *Graph) Count(from, to int) int { return g.counts[from][to] }

// Prob returns the empirical probability of taking from→to among all
// outgoing transitions of from.
func (g *Graph) Prob(from, to int) float64 {
	if g.outTotal[from] == 0 {
		return 0
	}
	return float64(g.counts[from][to]) / float64(g.outTotal[from])
}

// Transition is one edge with bookkeeping for reports.
type Transition struct {
	From, To  int
	FromLabel string
	ToLabel   string
	Count     int
	Prob      float64
	FirstSeen int // row index the destination state first appeared at
}

// Rare returns transitions taken at most maxCount times AND with
// probability below maxProb, sorted rarest first — the potential errors
// of Sec. 4.4.
func (g *Graph) Rare(maxCount int, maxProb float64) []Transition {
	var out []Transition
	for from, m := range g.counts {
		for to, c := range m {
			p := g.Prob(from, to)
			if c <= maxCount && p <= maxProb {
				out = append(out, Transition{
					From: from, To: to,
					FromLabel: g.Labels[from], ToLabel: g.Labels[to],
					Count: c, Prob: p, FirstSeen: g.firstSeen[to],
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count < out[j].Count
		}
		if out[i].Prob != out[j].Prob {
			return out[i].Prob < out[j].Prob
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// PathTo walks backwards from a state along the most frequent
// predecessors, returning the chain of state indexes ending at target
// (up to maxLen states) — the "chain of states prior to it" used to
// isolate error causes.
func (g *Graph) PathTo(target int, maxLen int) []int {
	if target < 0 || target >= len(g.States) || maxLen < 1 {
		return nil
	}
	path := []int{target}
	visited := map[int]bool{target: true}
	cur := target
	for len(path) < maxLen {
		bestFrom, bestCount := -1, 0
		for from, m := range g.counts {
			if visited[from] {
				continue
			}
			if c := m[cur]; c > bestCount || (c == bestCount && c > 0 && from < bestFrom) {
				bestFrom, bestCount = from, c
			}
		}
		if bestFrom < 0 || bestCount == 0 {
			break
		}
		path = append(path, bestFrom)
		visited[bestFrom] = true
		cur = bestFrom
	}
	// Reverse into chronological order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// WriteDOT renders the graph in Graphviz DOT format for visual
// inspection; edges taken at most rareMax times are highlighted.
func (g *Graph) WriteDOT(w io.Writer, rareMax int) error {
	if _, err := fmt.Fprintln(w, "digraph states {"); err != nil {
		return err
	}
	for i, lbl := range g.Labels {
		if _, err := fmt.Fprintf(w, "  s%d [label=%q];\n", i, lbl); err != nil {
			return err
		}
	}
	froms := make([]int, 0, len(g.counts))
	for from := range g.counts {
		froms = append(froms, from)
	}
	sort.Ints(froms)
	for _, from := range froms {
		tos := make([]int, 0, len(g.counts[from]))
		for to := range g.counts[from] {
			tos = append(tos, to)
		}
		sort.Ints(tos)
		for _, to := range tos {
			c := g.counts[from][to]
			attr := ""
			if c <= rareMax {
				attr = ", color=red, penwidth=2"
			}
			if _, err := fmt.Fprintf(w, "  s%d -> s%d [label=\"%d\"%s];\n", from, to, c, attr); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
