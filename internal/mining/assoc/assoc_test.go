package assoc

import (
	"strings"
	"testing"

	"ivnt/internal/staterep"
)

// table builds a state table from literal rows.
func table(signals []string, rows [][]string) *staterep.Table {
	tb := &staterep.Table{Signals: signals}
	for i, r := range rows {
		tb.Times = append(tb.Times, float64(i))
		tb.Cells = append(tb.Cells, r)
	}
	return tb
}

// wiperErrorScenario: wiper errors co-occur with freezing temperatures,
// the paper's example rule "IF T<-10 AND WiperActivated THEN
// WiperErrorBlocked".
func wiperErrorScenario() *staterep.Table {
	rows := [][]string{}
	for i := 0; i < 40; i++ {
		rows = append(rows, []string{"warm", "on", "ok"})
	}
	for i := 0; i < 40; i++ {
		rows = append(rows, []string{"warm", "off", "ok"})
	}
	for i := 0; i < 20; i++ {
		rows = append(rows, []string{"freezing", "on", "blocked"})
	}
	return table([]string{"temp", "wiper", "werror"}, rows)
}

func TestMineFindsCausalRule(t *testing.T) {
	rules := Mine(wiperErrorScenario(), Options{MinSupport: 0.1, MinConfidence: 0.9, MaxItems: 3})
	if len(rules) == 0 {
		t.Fatal("no rules mined")
	}
	found := false
	for _, r := range rules {
		s := r.String()
		if strings.Contains(s, "temp=freezing") && strings.Contains(s, "THEN werror=blocked") {
			found = true
			if r.Confidence != 1.0 {
				t.Fatalf("confidence = %v, want 1.0 (%s)", r.Confidence, s)
			}
			if r.Support != 0.2 {
				t.Fatalf("support = %v, want 0.2", r.Support)
			}
		}
	}
	if !found {
		var all []string
		for _, r := range rules {
			all = append(all, r.String())
		}
		t.Fatalf("expected freezing→blocked rule; got:\n%s", strings.Join(all, "\n"))
	}
}

func TestMineConfidenceFiltersWeakRules(t *testing.T) {
	// wiper=on does NOT imply blocked (40 ok vs 20 blocked).
	rules := Mine(wiperErrorScenario(), Options{MinSupport: 0.05, MinConfidence: 0.9, MaxItems: 2})
	for _, r := range rules {
		if len(r.Antecedent) == 1 && r.Antecedent[0].String() == "wiper=on" &&
			r.Consequent.String() == "werror=blocked" {
			t.Fatalf("weak rule passed confidence filter: %s", r)
		}
	}
}

func TestMineDeterministicOrder(t *testing.T) {
	a := Mine(wiperErrorScenario(), Options{})
	b := Mine(wiperErrorScenario(), Options{})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("rule %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestMineSkipsUnknownCells(t *testing.T) {
	tb := table([]string{"a", "b"}, [][]string{
		{staterep.Unknown, "x"},
		{staterep.Unknown, "x"},
		{"1", "x"},
	})
	rules := Mine(tb, Options{MinSupport: 0.5, MinConfidence: 0.5, MaxItems: 2})
	for _, r := range rules {
		if strings.Contains(r.String(), staterep.Unknown) {
			t.Fatalf("rule mentions unknown cell: %s", r)
		}
	}
}

func TestMineEmptyAndDefaults(t *testing.T) {
	if rules := Mine(&staterep.Table{}, Options{}); rules != nil {
		t.Fatal("empty table must yield no rules")
	}
	o := Options{}.withDefaults()
	if o.MinSupport != 0.1 || o.MinConfidence != 0.8 || o.MaxItems != 3 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestMineSupportCount(t *testing.T) {
	tb := table([]string{"a", "b"}, [][]string{
		{"1", "x"}, {"1", "x"}, {"1", "y"}, {"2", "y"},
	})
	rules := Mine(tb, Options{MinSupport: 0.5, MinConfidence: 0.6, MaxItems: 2})
	// a=1 appears 3/4; (a=1, b=x) appears 2/4; conf(a=1→b=x)=2/3.
	found := false
	for _, r := range rules {
		if len(r.Antecedent) == 1 && r.Antecedent[0].String() == "a=1" && r.Consequent.String() == "b=x" {
			found = true
			if r.Count != 2 || r.Support != 0.5 {
				t.Fatalf("rule stats = %+v", r)
			}
			if r.Confidence < 0.66 || r.Confidence > 0.67 {
				t.Fatalf("confidence = %v", r.Confidence)
			}
		}
	}
	if !found {
		t.Fatal("expected a=1 → b=x")
	}
}

func TestItemParsing(t *testing.T) {
	it := parseItem("sig=va=lue")
	if it.Signal != "sig" || it.Value != "va=lue" {
		t.Fatalf("parseItem = %+v", it)
	}
	if parseItem("noequals").Signal != "noequals" {
		t.Fatal("item without value")
	}
}
