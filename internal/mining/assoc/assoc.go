// Package assoc implements Association Rule Mining over the state
// representation (Sec. 4.4): each state row is an item-set of
// signal=value items; Apriori finds frequent item-sets and derives
// IF-THEN rules such as "IF T < -10 AND WiperActivated THEN
// WiperErrorBlocked".
package assoc

import (
	"fmt"
	"sort"
	"strings"

	"ivnt/internal/staterep"
)

// Item is one signal=value condition.
type Item struct {
	Signal string
	Value  string
}

// String renders "signal=value".
func (it Item) String() string { return it.Signal + "=" + it.Value }

// Rule is one mined IF-THEN rule.
type Rule struct {
	// Antecedent items, sorted.
	Antecedent []Item
	// Consequent is the single-item conclusion.
	Consequent Item
	// Support is the fraction of states containing antecedent ∪
	// consequent; Confidence is support(rule)/support(antecedent).
	Support    float64
	Confidence float64
	// Count is the absolute co-occurrence count.
	Count int
}

// String renders "IF a=x AND b=y THEN c=z (sup=…, conf=…)".
func (r Rule) String() string {
	parts := make([]string, len(r.Antecedent))
	for i, it := range r.Antecedent {
		parts[i] = it.String()
	}
	return fmt.Sprintf("IF %s THEN %s (sup=%.3f, conf=%.3f)",
		strings.Join(parts, " AND "), r.Consequent, r.Support, r.Confidence)
}

// Options tune the miner.
type Options struct {
	// MinSupport in (0,1]; default 0.1.
	MinSupport float64
	// MinConfidence in (0,1]; default 0.8.
	MinConfidence float64
	// MaxItems bounds item-set size (antecedent + consequent);
	// default 3.
	MaxItems int
}

func (o Options) withDefaults() Options {
	if o.MinSupport <= 0 {
		o.MinSupport = 0.1
	}
	if o.MinConfidence <= 0 {
		o.MinConfidence = 0.8
	}
	if o.MaxItems < 2 {
		o.MaxItems = 3
	}
	return o
}

// itemset is a sorted, canonical set of item keys.
type itemset string

func makeSet(items []string) itemset {
	sort.Strings(items)
	return itemset(strings.Join(items, "\x1f"))
}

func (s itemset) items() []string {
	return strings.Split(string(s), "\x1f")
}

// Mine runs Apriori over the state table and returns rules sorted by
// confidence then support, descending (deterministic).
func Mine(tb *staterep.Table, opts Options) []Rule {
	opts = opts.withDefaults()
	n := tb.NumRows()
	if n == 0 {
		return nil
	}
	minCount := int(opts.MinSupport * float64(n))
	if minCount < 1 {
		minCount = 1
	}

	// Transactions: one item per column, skipping unknowns.
	txns := make([][]string, n)
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(tb.Signals))
		for j, sig := range tb.Signals {
			v := tb.Cells[i][j]
			if v == staterep.Unknown {
				continue
			}
			row = append(row, Item{Signal: sig, Value: v}.String())
		}
		sort.Strings(row)
		txns[i] = row
	}

	// L1: frequent single items.
	counts := map[itemset]int{}
	for _, txn := range txns {
		for _, it := range txn {
			counts[itemset(it)]++
		}
	}
	freq := map[itemset]int{}
	var current []itemset
	for s, c := range counts {
		if c >= minCount {
			freq[s] = c
			current = append(current, s)
		}
	}
	sort.Slice(current, func(i, j int) bool { return current[i] < current[j] })

	// Levels 2..MaxItems: candidate generation by single-item
	// extension, pruned by support.
	for size := 2; size <= opts.MaxItems && len(current) > 0; size++ {
		cand := map[itemset]int{}
		for _, txn := range txns {
			inTxn := map[string]bool{}
			for _, it := range txn {
				inTxn[it] = true
			}
			for _, prev := range current {
				items := prev.items()
				if len(items) != size-1 || !allIn(items, inTxn) {
					continue
				}
				for _, it := range txn {
					if it > items[len(items)-1] { // lexicographic extension avoids duplicates
						cand[makeSet(append(append([]string{}, items...), it))]++
					}
				}
			}
		}
		current = current[:0]
		for s, c := range cand {
			if c >= minCount {
				freq[s] = c
				current = append(current, s)
			}
		}
		sort.Slice(current, func(i, j int) bool { return current[i] < current[j] })
	}

	// Rule generation: single-item consequents from every frequent set
	// of size ≥ 2.
	var rules []Rule
	for s, c := range freq {
		items := s.items()
		if len(items) < 2 {
			continue
		}
		for k := range items {
			ante := make([]string, 0, len(items)-1)
			ante = append(ante, items[:k]...)
			ante = append(ante, items[k+1:]...)
			anteCount := freq[makeSet(append([]string{}, ante...))]
			if anteCount == 0 {
				continue
			}
			conf := float64(c) / float64(anteCount)
			if conf < opts.MinConfidence {
				continue
			}
			rules = append(rules, Rule{
				Antecedent: parseItems(ante),
				Consequent: parseItem(items[k]),
				Support:    float64(c) / float64(n),
				Confidence: conf,
				Count:      c,
			})
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		if rules[i].Support != rules[j].Support {
			return rules[i].Support > rules[j].Support
		}
		return rules[i].String() < rules[j].String()
	})
	return rules
}

func allIn(items []string, set map[string]bool) bool {
	for _, it := range items {
		if !set[it] {
			return false
		}
	}
	return true
}

func parseItem(s string) Item {
	if i := strings.IndexByte(s, '='); i >= 0 {
		return Item{Signal: s[:i], Value: s[i+1:]}
	}
	return Item{Signal: s}
}

func parseItems(ss []string) []Item {
	sort.Strings(ss)
	out := make([]Item, len(ss))
	for i, s := range ss {
		out[i] = parseItem(s)
	}
	return out
}
