// Package anomaly implements the anomaly detection application of
// Sec. 4.4: hot-spot states are scored by the rarity of their
// signal-value combinations, ranked by severity for the developer, and
// can be transformed automatically into extension rules w that flag
// similar anomalies in further runs.
package anomaly

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ivnt/internal/rules"
	"ivnt/internal/staterep"
)

// Anomaly is one ranked state.
type Anomaly struct {
	// Row is the state-table row index; T its timestamp.
	Row int
	T   float64
	// Score is the severity (higher is rarer); the sum of per-signal
	// surprisals -log2 p(signal=value).
	Score float64
	// Culprit is the signal contributing the most surprisal, with its
	// value — the natural starting point for diagnosis.
	Culprit      string
	CulpritValue string
	// State is the full row.
	State map[string]string
}

// String renders a one-line report entry.
func (a Anomaly) String() string {
	return fmt.Sprintf("t=%.3f score=%.2f culprit=%s=%s", a.T, a.Score, a.Culprit, a.CulpritValue)
}

// Detect scores every state by summed surprisal of its cell values and
// returns the topK, most severe first. Unknown cells contribute
// nothing.
func Detect(tb *staterep.Table, topK int) []Anomaly {
	n := tb.NumRows()
	if n == 0 || topK < 1 {
		return nil
	}
	// Per-column value frequencies.
	freqs := make([]map[string]int, len(tb.Signals))
	for j := range tb.Signals {
		freqs[j] = map[string]int{}
	}
	for i := 0; i < n; i++ {
		for j := range tb.Signals {
			freqs[j][tb.Cells[i][j]]++
		}
	}
	out := make([]Anomaly, 0, n)
	for i := 0; i < n; i++ {
		var score, worst float64
		worstJ := -1
		for j := range tb.Signals {
			v := tb.Cells[i][j]
			if v == staterep.Unknown {
				continue
			}
			p := float64(freqs[j][v]) / float64(n)
			s := -math.Log2(p)
			score += s
			if s > worst {
				worst, worstJ = s, j
			}
		}
		a := Anomaly{Row: i, T: tb.Times[i], Score: score, State: tb.Row(i)}
		if worstJ >= 0 {
			a.Culprit = tb.Signals[worstJ]
			a.CulpritValue = tb.Cells[i][worstJ]
		}
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Row < out[j].Row
	})
	if topK < len(out) {
		out = out[:topK]
	}
	return out
}

// ToExtension converts an anomaly into an extension rule w (Sec. 4.4:
// "automatically be transformed into extensions w to detect similar
// anomalies in further runs"): the rule fires whenever the culprit
// signal takes the anomalous value again.
func (a Anomaly) ToExtension() (rules.Extension, error) {
	if a.Culprit == "" {
		return rules.Extension{}, fmt.Errorf("anomaly: no culprit signal to derive a rule from")
	}
	ext := rules.Extension{
		WID:  "anomaly." + a.Culprit,
		SID:  a.Culprit,
		Expr: fmt.Sprintf("iff(str(v) == %q, 1, null)", a.CulpritValue),
	}
	if err := ext.Validate(); err != nil {
		return rules.Extension{}, err
	}
	return ext, nil
}

// Report renders the top anomalies as an aligned text block.
func Report(as []Anomaly) string {
	var b strings.Builder
	for i, a := range as {
		fmt.Fprintf(&b, "%2d. %s\n", i+1, a)
	}
	return b.String()
}
