package anomaly

import (
	"strings"
	"testing"

	"ivnt/internal/staterep"
)

func table(signals []string, rows [][]string) *staterep.Table {
	tb := &staterep.Table{Signals: signals}
	for i, r := range rows {
		tb.Times = append(tb.Times, float64(i))
		tb.Cells = append(tb.Cells, r)
	}
	return tb
}

func scenario() *staterep.Table {
	rows := [][]string{}
	for i := 0; i < 50; i++ {
		rows = append(rows, []string{"(high,steady)", "off"})
	}
	rows = append(rows, []string{"outlier v=800", "off"}) // row 50
	for i := 0; i < 49; i++ {
		rows = append(rows, []string{"(high,steady)", "on"})
	}
	return table([]string{"speed", "light"}, rows)
}

func TestDetectRanksOutlierFirst(t *testing.T) {
	as := Detect(scenario(), 5)
	if len(as) != 5 {
		t.Fatalf("anomalies = %d", len(as))
	}
	top := as[0]
	if top.Row != 50 {
		t.Fatalf("top anomaly row = %d, want 50 (%+v)", top.Row, top)
	}
	if top.Culprit != "speed" || top.CulpritValue != "outlier v=800" {
		t.Fatalf("culprit = %s=%s", top.Culprit, top.CulpritValue)
	}
	if top.Score <= as[1].Score {
		t.Fatalf("scores not descending: %v then %v", top.Score, as[1].Score)
	}
}

func TestDetectSkipsUnknown(t *testing.T) {
	tb := table([]string{"a"}, [][]string{
		{staterep.Unknown}, {"x"}, {"x"},
	})
	as := Detect(tb, 3)
	if as[0].Culprit == "" && as[0].Row != 0 {
		t.Fatalf("unexpected ranking: %+v", as)
	}
	// The unknown-only row scores 0.
	var unknownScore float64 = -1
	for _, a := range as {
		if a.Row == 0 {
			unknownScore = a.Score
		}
	}
	if unknownScore != 0 {
		t.Fatalf("unknown row score = %v, want 0", unknownScore)
	}
}

func TestDetectEdgeCases(t *testing.T) {
	if as := Detect(&staterep.Table{}, 5); as != nil {
		t.Fatal("empty table must yield nil")
	}
	if as := Detect(scenario(), 0); as != nil {
		t.Fatal("topK 0 must yield nil")
	}
	as := Detect(scenario(), 1000)
	if len(as) != 100 {
		t.Fatalf("topK beyond rows = %d", len(as))
	}
}

func TestToExtension(t *testing.T) {
	as := Detect(scenario(), 1)
	ext, err := as[0].ToExtension()
	if err != nil {
		t.Fatal(err)
	}
	if ext.WID != "anomaly.speed" || ext.SID != "speed" {
		t.Fatalf("extension = %+v", ext)
	}
	if !strings.Contains(ext.Expr, "outlier v=800") {
		t.Fatalf("expr = %q", ext.Expr)
	}
	// Extension must be valid against the sequence schema.
	if err := ext.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Anomaly{}
	if _, err := bad.ToExtension(); err == nil {
		t.Fatal("anomaly without culprit must fail")
	}
}

func TestReport(t *testing.T) {
	as := Detect(scenario(), 3)
	rep := Report(as)
	if !strings.Contains(rep, "1.") || !strings.Contains(rep, "culprit=speed=outlier v=800") {
		t.Fatalf("report:\n%s", rep)
	}
}
