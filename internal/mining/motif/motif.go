// Package motif mines frequent symbolic motifs from homogenized signal
// sequences: recurring n-grams of (level, trend) symbols. The paper's
// related work reduces sensor data via frequent motifs (Agarwal et al.,
// IKDD CoDS 2015 [1]); here motifs run the other way as an application
// — frequent patterns describe normal behaviour, and windows matching
// no frequent motif are surfaced as potential errors, complementing the
// transition-graph and anomaly applications of Sec. 4.4.
package motif

import (
	"fmt"
	"sort"
	"strings"

	"ivnt/internal/relation"
	"ivnt/internal/trace"
)

// Motif is one recurring pattern of consecutive symbolized values.
type Motif struct {
	// Pattern is the value n-gram.
	Pattern []string
	// Count is how often it occurs (overlapping occurrences counted).
	Count int
	// Support is Count relative to the number of windows.
	Support float64
	// FirstAt is the timestamp of the first occurrence.
	FirstAt float64
}

// String renders "a → b → c (12x, sup 0.34)".
func (m Motif) String() string {
	return fmt.Sprintf("%s (%dx, sup %.3f)", strings.Join(m.Pattern, " -> "), m.Count, m.Support)
}

// Options tune the miner.
type Options struct {
	// Length is the motif length in values; default 3, minimum 2.
	Length int
	// MinSupport in (0,1]: patterns below it are not reported;
	// default 0.05.
	MinSupport float64
	// TopK bounds the result; 0 = all frequent motifs.
	TopK int
}

func (o Options) withDefaults() Options {
	if o.Length < 2 {
		o.Length = 3
	}
	if o.MinSupport <= 0 {
		o.MinSupport = 0.05
	}
	return o
}

// window is one value n-gram with its start time.
type window struct {
	key string
	at  float64
}

// extract reads a K_s-shaped sequence into time-ordered windows.
func extract(seq *relation.Relation, length int) ([]window, []string, error) {
	tIdx := seq.Schema.Index(trace.ColT)
	vIdx := seq.Schema.Index(trace.ColV)
	if tIdx < 0 || vIdx < 0 {
		return nil, nil, fmt.Errorf("motif: sequence lacks t/v columns (%s)", seq.Schema)
	}
	type pt struct {
		t float64
		v string
	}
	var pts []pt
	for _, p := range seq.Partitions {
		for _, r := range p {
			if r[vIdx].IsNull() {
				continue
			}
			pts = append(pts, pt{t: r[tIdx].AsFloat(), v: r[vIdx].AsString()})
		}
	}
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].t < pts[j].t })
	if len(pts) < length {
		return nil, nil, nil
	}
	values := make([]string, len(pts))
	for i, p := range pts {
		values[i] = p.v
	}
	windows := make([]window, 0, len(pts)-length+1)
	for i := 0; i+length <= len(pts); i++ {
		windows = append(windows, window{
			key: strings.Join(values[i:i+length], "\x1f"),
			at:  pts[i].t,
		})
	}
	return windows, values, nil
}

// Mine returns the frequent motifs of a symbolized sequence, most
// frequent first (ties broken lexicographically for determinism).
func Mine(seq *relation.Relation, opts Options) ([]Motif, error) {
	opts = opts.withDefaults()
	windows, _, err := extract(seq, opts.Length)
	if err != nil {
		return nil, err
	}
	if len(windows) == 0 {
		return nil, nil
	}
	counts := map[string]int{}
	first := map[string]float64{}
	for _, w := range windows {
		if _, ok := counts[w.key]; !ok {
			first[w.key] = w.at
		}
		counts[w.key]++
	}
	var out []Motif
	for key, c := range counts {
		sup := float64(c) / float64(len(windows))
		if sup < opts.MinSupport {
			continue
		}
		out = append(out, Motif{
			Pattern: strings.Split(key, "\x1f"),
			Count:   c,
			Support: sup,
			FirstAt: first[key],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return strings.Join(out[i].Pattern, "\x1f") < strings.Join(out[j].Pattern, "\x1f")
	})
	if opts.TopK > 0 && len(out) > opts.TopK {
		out = out[:opts.TopK]
	}
	return out, nil
}

// Discord is a window matching no frequent motif — a candidate error
// region (the discord notion of the SAX literature).
type Discord struct {
	At      float64
	Pattern []string
	// Count is how often this exact pattern occurred (1 = unique).
	Count int
}

// String renders the discord.
func (d Discord) String() string {
	return fmt.Sprintf("t=%.3f %s (%dx)", d.At, strings.Join(d.Pattern, " -> "), d.Count)
}

// Discords returns the windows whose pattern occurs at most maxCount
// times, rarest first — the flip side of Mine.
func Discords(seq *relation.Relation, opts Options, maxCount int) ([]Discord, error) {
	opts = opts.withDefaults()
	windows, _, err := extract(seq, opts.Length)
	if err != nil {
		return nil, err
	}
	counts := map[string]int{}
	for _, w := range windows {
		counts[w.key]++
	}
	var out []Discord
	for _, w := range windows {
		if c := counts[w.key]; c <= maxCount {
			out = append(out, Discord{
				At:      w.at,
				Pattern: strings.Split(w.key, "\x1f"),
				Count:   c,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count < out[j].Count
		}
		return out[i].At < out[j].At
	})
	return out, nil
}
