package motif

import (
	"strings"
	"testing"

	"ivnt/internal/relation"
	"ivnt/internal/rules"
)

// seqOf builds a K_s-shaped sequence from symbol values at 1s spacing.
func seqOf(vals ...string) *relation.Relation {
	rel := relation.New(rules.SequenceSchema())
	for i, v := range vals {
		var cell relation.Value
		if v == "" {
			cell = relation.Null()
		} else {
			cell = relation.Str(v)
		}
		rel.Append(relation.Row{
			relation.Float(float64(i)),
			relation.Str("s"),
			cell,
			relation.Str("FC"),
		})
	}
	return rel
}

// cyclic builds A B C repeated n times with one glitch X injected.
func cyclic(n int, glitchAt int) *relation.Relation {
	var vals []string
	for i := 0; i < n*3; i++ {
		v := []string{"A", "B", "C"}[i%3]
		if i == glitchAt {
			v = "X"
		}
		vals = append(vals, v)
	}
	return seqOf(vals...)
}

func TestMineFindsCycle(t *testing.T) {
	motifs, err := Mine(cyclic(20, -1), Options{Length: 3, MinSupport: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(motifs) != 3 {
		t.Fatalf("motifs = %d: %v", len(motifs), motifs)
	}
	// The three rotations of A B C each cover ~1/3 of windows.
	for _, m := range motifs {
		if m.Support < 0.3 {
			t.Fatalf("support = %v for %v", m.Support, m)
		}
		joined := strings.Join(m.Pattern, "")
		if joined != "ABC" && joined != "BCA" && joined != "CAB" {
			t.Fatalf("unexpected motif %v", m)
		}
	}
	if !strings.Contains(motifs[0].String(), "->") {
		t.Fatalf("String = %q", motifs[0])
	}
}

func TestDiscordsFindGlitch(t *testing.T) {
	seq := cyclic(20, 30)
	ds, err := Discords(seq, Options{Length: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The glitch X at index 30 produces 3 unique windows containing it.
	if len(ds) != 3 {
		t.Fatalf("discords = %d: %v", len(ds), ds)
	}
	found := false
	for _, d := range ds {
		for _, p := range d.Pattern {
			if p == "X" {
				found = true
			}
		}
		if d.Count != 1 {
			t.Fatalf("discord count = %d", d.Count)
		}
	}
	if !found {
		t.Fatalf("glitch not in discords: %v", ds)
	}
	// A clean cycle has no unique windows.
	clean, err := Discords(cyclic(20, -1), Options{Length: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) != 0 {
		t.Fatalf("clean cycle discords = %v", clean)
	}
}

func TestMineDefaultsAndEdgeCases(t *testing.T) {
	// Too short for a window.
	m, err := Mine(seqOf("A"), Options{Length: 3})
	if err != nil || m != nil {
		t.Fatalf("short sequence: %v, %v", m, err)
	}
	// Nulls are skipped.
	m, err = Mine(seqOf("A", "", "B", "A", "B", "A", "B"), Options{Length: 2, MinSupport: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, mm := range m {
		for _, p := range mm.Pattern {
			if p == "" {
				t.Fatalf("null leaked into motif: %v", mm)
			}
		}
	}
	// TopK truncation.
	m, err = Mine(cyclic(10, -1), Options{Length: 2, MinSupport: 0.01, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 {
		t.Fatalf("topK = %d", len(m))
	}
	// Bad schema.
	bad := relation.New(relation.NewSchema(relation.Column{Name: "x", Kind: relation.KindInt}))
	if _, err := Mine(bad, Options{}); err == nil {
		t.Fatal("bad schema must fail")
	}
	if _, err := Discords(bad, Options{}, 1); err == nil {
		t.Fatal("bad schema must fail")
	}
}

func TestMineDeterministic(t *testing.T) {
	a, err := Mine(cyclic(15, 7), Options{Length: 3, MinSupport: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(cyclic(15, 7), Options{Length: 3, MinSupport: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("motif %d differs", i)
		}
	}
}
