package expr

import (
	"fmt"
	"strings"

	"ivnt/internal/relation"
)

// Node is an expression AST node.
type Node interface {
	fmt.Stringer
	node()
}

// Lit is a literal value (number, string, true/false, null).
type Lit struct {
	Val valueLit
}

type valueLit struct {
	isNull  bool
	isBool  bool
	isInt   bool
	isFloat bool
	isStr   bool
	b       bool
	i       int64
	f       float64
	s       string
}

// Value converts the literal to a relation value. Planners outside
// this package (zone-map pruning, constant folding) need to inspect
// literal operands without reaching into the unexported valueLit.
func (n *Lit) Value() relation.Value {
	v := n.Val
	switch {
	case v.isNull:
		return relation.Null()
	case v.isBool:
		return relation.Bool(v.b)
	case v.isInt:
		return relation.Int(v.i)
	case v.isFloat:
		return relation.Float(v.f)
	default:
		return relation.Str(v.s)
	}
}

// Ident is a column reference, resolved at compile time.
type Ident struct {
	Name string
}

// Unary is a prefix operator application (-x, !x).
type Unary struct {
	Op string
	X  Node
}

// Binary is an infix operator application.
type Binary struct {
	Op   string
	L, R Node
}

// Cond is the ternary conditional c ? a : b.
type Cond struct {
	C, A, B Node
}

// Call is a function invocation.
type Call struct {
	Fn   string
	Args []Node
}

func (*Lit) node()    {}
func (*Ident) node()  {}
func (*Unary) node()  {}
func (*Binary) node() {}
func (*Cond) node()   {}
func (*Call) node()   {}

func (n *Lit) String() string {
	v := n.Val
	switch {
	case v.isNull:
		return "null"
	case v.isBool:
		return fmt.Sprintf("%t", v.b)
	case v.isInt:
		return fmt.Sprintf("%d", v.i)
	case v.isFloat:
		return fmt.Sprintf("%g", v.f)
	default:
		return fmt.Sprintf("%q", v.s)
	}
}

func (n *Ident) String() string  { return n.Name }
func (n *Unary) String() string  { return "(" + n.Op + n.X.String() + ")" }
func (n *Binary) String() string { return "(" + n.L.String() + " " + n.Op + " " + n.R.String() + ")" }
func (n *Cond) String() string {
	return "(" + n.C.String() + " ? " + n.A.String() + " : " + n.B.String() + ")"
}
func (n *Call) String() string {
	args := make([]string, len(n.Args))
	for i, a := range n.Args {
		args[i] = a.String()
	}
	return n.Fn + "(" + strings.Join(args, ", ") + ")"
}

// Idents returns the set of column names referenced by the expression,
// in first-appearance order. Used by plan validation.
func Idents(n Node) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Node)
	walk = func(n Node) {
		switch x := n.(type) {
		case *Ident:
			if !seen[x.Name] {
				seen[x.Name] = true
				out = append(out, x.Name)
			}
		case *Unary:
			walk(x.X)
		case *Binary:
			walk(x.L)
			walk(x.R)
		case *Cond:
			walk(x.C)
			walk(x.A)
			walk(x.B)
		case *Call:
			for _, a := range x.Args {
				walk(a)
			}
		}
	}
	walk(n)
	return out
}

// UsesWindow reports whether the expression uses temporal window
// functions (lag/gap/delta), which require ordered per-signal input.
func UsesWindow(n Node) bool {
	found := false
	var walk func(Node)
	walk = func(n Node) {
		switch x := n.(type) {
		case *Unary:
			walk(x.X)
		case *Binary:
			walk(x.L)
			walk(x.R)
		case *Cond:
			walk(x.C)
			walk(x.A)
			walk(x.B)
		case *Call:
			switch x.Fn {
			case "lag", "gap", "delta":
				found = true
			}
			for _, a := range x.Args {
				walk(a)
			}
		}
	}
	walk(n)
	return found
}
