package expr

import (
	"fmt"
	"strings"
	"sync"

	"ivnt/internal/relation"
)

// Env supplies row context during evaluation. Col returns the value of
// a column by index; Lag returns the value of the column n rows earlier
// in the same (per-signal, time-ordered) sequence, with ok=false at the
// sequence head. Window access is what lets constraint rules express
// temporal conditions such as cycle-time violations (Sec. 4.1).
type Env interface {
	Col(i int) relation.Value
	Lag(i, n int) (relation.Value, bool)
}

// Program is a compiled expression bound to a schema.
type Program struct {
	Source string
	root   Node
	cols   map[string]int
	window bool

	flatOnce sync.Once
	flat     *FlatProgram
}

// Compile parses src and resolves all column references against the
// schema.
func Compile(src string, schema relation.Schema) (*Program, error) {
	root, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileNode(src, root, schema)
}

// CompileNode binds an already parsed AST to a schema.
func CompileNode(src string, root Node, schema relation.Schema) (*Program, error) {
	cols := map[string]int{}
	for _, name := range Idents(root) {
		i := schema.Index(name)
		if i < 0 {
			return nil, fmt.Errorf("expr: unknown column %q in %q (schema %s)", name, src, schema)
		}
		cols[name] = i
	}
	if err := checkCalls(root); err != nil {
		return nil, fmt.Errorf("expr: %v in %q", err, src)
	}
	return &Program{Source: src, root: root, cols: cols, window: UsesWindow(root)}, nil
}

// UsesWindow reports whether the program needs lag history.
func (p *Program) UsesWindow() bool { return p.window }

// Columns returns the referenced column names.
func (p *Program) Columns() []string {
	out := make([]string, 0, len(p.cols))
	for n := range p.cols {
		out = append(out, n)
	}
	return out
}

// arity describes min/max argument counts per builtin; max < 0 means
// variadic.
var arity = map[string][2]int{
	"abs": {1, 1}, "min": {2, -1}, "max": {2, -1}, "floor": {1, 1},
	"ceil": {1, 1}, "round": {1, 1}, "sqrt": {1, 1}, "pow": {2, 2},
	"log": {1, 1}, "exp": {1, 1},
	"int": {1, 1}, "float": {1, 1}, "str": {1, 1},
	"contains": {2, 2}, "startswith": {2, 2}, "endswith": {2, 2},
	"lower": {1, 1}, "upper": {1, 1}, "strlen": {1, 1},
	"byteat": {2, 2}, "ubits": {3, 3}, "sbits": {3, 3},
	"ulbits": {3, 3}, "slbits": {3, 3},
	"ube": {3, 3}, "ule": {3, 3}, "paylen": {1, 1},
	"isnull": {1, 1}, "coalesce": {1, -1},
	"lag": {1, 2}, "gap": {1, 1}, "delta": {1, 1},
	"iff":    {3, 3},
	"lookup": {2, 2}, "slice": {3, 3},
}

func checkCalls(n Node) error {
	switch x := n.(type) {
	case *Unary:
		return checkCalls(x.X)
	case *Binary:
		if err := checkCalls(x.L); err != nil {
			return err
		}
		return checkCalls(x.R)
	case *Cond:
		for _, c := range []Node{x.C, x.A, x.B} {
			if err := checkCalls(c); err != nil {
				return err
			}
		}
	case *Call:
		a, ok := arity[x.Fn]
		if !ok {
			return fmt.Errorf("unknown function %q", x.Fn)
		}
		if len(x.Args) < a[0] || (a[1] >= 0 && len(x.Args) > a[1]) {
			return fmt.Errorf("function %q: wrong argument count %d", x.Fn, len(x.Args))
		}
		switch x.Fn {
		case "lag", "gap", "delta":
			if _, ok := x.Args[0].(*Ident); !ok {
				return fmt.Errorf("function %q: first argument must be a column name", x.Fn)
			}
		}
		for _, arg := range x.Args {
			if err := checkCalls(arg); err != nil {
				return err
			}
		}
	}
	return nil
}

// Eval evaluates the program against env. Runtime type errors evaluate
// to null rather than aborting the batch: a malformed payload in one
// trace row must not poison a billion-row job.
func (p *Program) Eval(env Env) relation.Value {
	return p.eval(p.root, env)
}

// EvalBool evaluates and coerces to a boolean (null → false).
func (p *Program) EvalBool(env Env) bool {
	return p.eval(p.root, env).AsBool()
}

func (p *Program) eval(n Node, env Env) relation.Value {
	switch x := n.(type) {
	case *Lit:
		v := x.Val
		switch {
		case v.isNull:
			return relation.Null()
		case v.isBool:
			return relation.Bool(v.b)
		case v.isInt:
			return relation.Int(v.i)
		case v.isFloat:
			return relation.Float(v.f)
		default:
			return relation.Str(v.s)
		}
	case *Ident:
		return env.Col(p.cols[x.Name])
	case *Unary:
		v := p.eval(x.X, env)
		switch x.Op {
		case "-":
			return EvalNeg(v)
		case "!":
			return relation.Bool(!v.AsBool())
		}
		return relation.Null()
	case *Binary:
		return p.evalBinary(x, env)
	case *Cond:
		if p.eval(x.C, env).AsBool() {
			return p.eval(x.A, env)
		}
		return p.eval(x.B, env)
	case *Call:
		return p.evalCall(x, env)
	}
	return relation.Null()
}

func bothInt(a, b relation.Value) bool {
	return a.K == relation.KindInt && b.K == relation.KindInt
}

// binOpByName maps source-level operator spellings to BinOp codes;
// && and || are absent because they short-circuit (see EvalBinary).
var binOpByName = map[string]BinOp{
	"==": BinEq, "!=": BinNe, "<": BinLt, "<=": BinLe, ">": BinGt,
	">=": BinGe, "+": BinAdd, "-": BinSub, "*": BinMul, "/": BinDiv,
	"%": BinMod,
}

func (p *Program) evalBinary(x *Binary, env Env) relation.Value {
	// Short-circuit boolean connectives.
	switch x.Op {
	case "&&":
		if !p.eval(x.L, env).AsBool() {
			return relation.Bool(false)
		}
		return relation.Bool(p.eval(x.R, env).AsBool())
	case "||":
		if p.eval(x.L, env).AsBool() {
			return relation.Bool(true)
		}
		return relation.Bool(p.eval(x.R, env).AsBool())
	}
	a := p.eval(x.L, env)
	b := p.eval(x.R, env)
	op, ok := binOpByName[x.Op]
	if !ok {
		return relation.Null()
	}
	return EvalBinary(op, a, b)
}

// compareForOrder compares numerically when both sides are numeric
// (including numeric strings), else lexicographically.
func compareForOrder(a, b relation.Value) int {
	if a.IsNumeric() && b.IsNumeric() {
		fa, fb := a.AsFloat(), b.AsFloat()
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	sa, sb := a.AsString(), b.AsString()
	switch {
	case sa < sb:
		return -1
	case sa > sb:
		return 1
	default:
		return 0
	}
}

func (p *Program) evalCall(x *Call, env Env) relation.Value {
	fn := x.Fn
	switch fn {
	case "lag", "gap", "delta":
		return p.evalWindow(x, env)
	case "iff":
		if p.eval(x.Args[0], env).AsBool() {
			return p.eval(x.Args[1], env)
		}
		return p.eval(x.Args[2], env)
	case "coalesce":
		for _, a := range x.Args {
			if v := p.eval(a, env); !v.IsNull() {
				return v
			}
		}
		return relation.Null()
	}
	b, ok := builtinByName[fn]
	if !ok {
		return relation.Null()
	}
	args := make([]relation.Value, len(x.Args))
	for i, a := range x.Args {
		args[i] = p.eval(a, env)
	}
	return CallBuiltin(b, args)
}

// lookupTable translates a raw value through a "k=v;k=v" table — the
// serialized form of a documented value table (Hex/categorical mapping,
// Sec. 3.2). A missing entry renders as "raw(N)" so undocumented states
// stay visible to analysts instead of vanishing.
func lookupTable(v relation.Value, table string) relation.Value {
	if v.IsNull() {
		return relation.Null()
	}
	key := v.AsString()
	for len(table) > 0 {
		var entry string
		if i := strings.IndexByte(table, ';'); i >= 0 {
			entry, table = table[:i], table[i+1:]
		} else {
			entry, table = table, ""
		}
		if j := strings.IndexByte(entry, '='); j >= 0 && entry[:j] == key {
			return relation.Str(entry[j+1:])
		}
	}
	return relation.Str("raw(" + key + ")")
}

// slicePayload returns n bytes of a payload starting at byte offset
// first — the u₁ relevant-byte extraction of Sec. 3.2 (rel.B in
// Table 1).
func slicePayload(payload relation.Value, first, n int) relation.Value {
	if payload.K != relation.KindBytes || first < 0 || n < 0 || first+n > len(payload.B) {
		return relation.Null()
	}
	return relation.Bytes(payload.B[first : first+n])
}

func (p *Program) evalWindow(x *Call, env Env) relation.Value {
	col := x.Args[0].(*Ident)
	idx := p.cols[col.Name]
	switch x.Fn {
	case "lag":
		n := 1
		if len(x.Args) == 2 {
			n = int(p.eval(x.Args[1], env).AsInt())
		}
		v, ok := env.Lag(idx, n)
		if !ok {
			return relation.Null()
		}
		return v
	case "gap", "delta":
		cur := env.Col(idx)
		prev, ok := env.Lag(idx, 1)
		if !ok || cur.IsNull() || prev.IsNull() {
			return relation.Null()
		}
		return relation.Float(cur.AsFloat() - prev.AsFloat())
	}
	return relation.Null()
}

// extractBits reads n bits starting at MSB-first bit position start from
// a byte payload, as CAN signal extraction does for Motorola-ordered
// signals.
func extractBits(payload relation.Value, start, n int, signed bool) relation.Value {
	if payload.K != relation.KindBytes || n <= 0 || n > 64 || start < 0 {
		return relation.Null()
	}
	b := payload.B
	if start+n > len(b)*8 {
		return relation.Null()
	}
	var out uint64
	for i := 0; i < n; i++ {
		bit := start + i
		byteIdx := bit / 8
		bitIdx := 7 - bit%8
		out = out<<1 | uint64(b[byteIdx]>>bitIdx&1)
	}
	if signed && n < 64 && out&(1<<(n-1)) != 0 {
		return relation.Int(int64(out) - (1 << n))
	}
	return relation.Int(int64(out))
}

// extractBitsLE reads n bits starting at LSB-first bit position start
// (DBC/Intel numbering: bit 0 is the least significant bit of byte 0)
// assembling them little-endian — the layout of Intel-ordered CAN
// signals, including unaligned ones.
func extractBitsLE(payload relation.Value, start, n int, signed bool) relation.Value {
	if payload.K != relation.KindBytes || n <= 0 || n > 64 || start < 0 {
		return relation.Null()
	}
	b := payload.B
	if start+n > len(b)*8 {
		return relation.Null()
	}
	var out uint64
	for i := 0; i < n; i++ {
		bit := start + i
		out |= uint64(b[bit/8]>>(bit%8)&1) << i
	}
	if signed && n < 64 && out&(1<<(n-1)) != 0 {
		return relation.Int(int64(out) - (1 << n))
	}
	return relation.Int(int64(out))
}

// extractBytes reads n whole bytes at byte offset off as an unsigned
// integer, big- or little-endian.
func extractBytes(payload relation.Value, off, n int, littleEndian bool) relation.Value {
	if payload.K != relation.KindBytes || n <= 0 || n > 8 || off < 0 {
		return relation.Null()
	}
	b := payload.B
	if off+n > len(b) {
		return relation.Null()
	}
	var out uint64
	if littleEndian {
		for i := n - 1; i >= 0; i-- {
			out = out<<8 | uint64(b[off+i])
		}
	} else {
		for i := 0; i < n; i++ {
			out = out<<8 | uint64(b[off+i])
		}
	}
	return relation.Int(int64(out))
}

// RowEnv is an Env over a time-ordered row slice with a cursor; Lag
// walks backwards through the slice.
type RowEnv struct {
	Rows []relation.Row
	Idx  int
}

// Col returns the cursor row's cell i.
func (e *RowEnv) Col(i int) relation.Value {
	r := e.Rows[e.Idx]
	if i < 0 || i >= len(r) {
		return relation.Null()
	}
	return r[i]
}

// Lag returns cell i of the row n positions before the cursor.
func (e *RowEnv) Lag(i, n int) (relation.Value, bool) {
	j := e.Idx - n
	if n <= 0 || j < 0 {
		return relation.Null(), false
	}
	r := e.Rows[j]
	if i < 0 || i >= len(r) {
		return relation.Null(), false
	}
	return r[i], true
}

// SingleRowEnv adapts one row with no history (Lag always misses).
type SingleRowEnv struct {
	Row relation.Row
}

// Col returns cell i of the row.
func (e SingleRowEnv) Col(i int) relation.Value {
	if i < 0 || i >= len(e.Row) {
		return relation.Null()
	}
	return e.Row[i]
}

// Lag always reports no history.
func (e SingleRowEnv) Lag(int, int) (relation.Value, bool) { return relation.Null(), false }
