package expr

import (
	"testing"

	"ivnt/internal/relation"
)

// Interpretation rules evaluate once per (message, signal) pair — at
// paper scale, billions of times. These benches keep the evaluator's
// cost visible.

func benchRow() relation.Row {
	return relation.Row{
		relation.Float(2.5),
		relation.Float(45),
		relation.Str("wpos"),
		relation.Bytes([]byte{0x5A, 0x01, 0xFF, 0x80}),
		relation.Int(7),
	}
}

func benchProgram(b *testing.B, src string) *Program {
	b.Helper()
	p, err := Compile(src, testSchema)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkEvalInterpretationRule(b *testing.B) {
	p := benchProgram(b, "0.5 * ube(l, 0, 2)")
	env := SingleRowEnv{Row: benchRow()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Eval(env)
	}
}

func BenchmarkEvalLookupRule(b *testing.B) {
	p := benchProgram(b, "lookup(byteat(l, 1), '0=off;1=parklight on;2=headlight on')")
	env := SingleRowEnv{Row: benchRow()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Eval(env)
	}
}

func BenchmarkEvalConstraintWithWindow(b *testing.B) {
	p := benchProgram(b, "isnull(lag(v)) || v != lag(v) || gap(t) > 0.15")
	rows := make([]relation.Row, 64)
	for i := range rows {
		rows[i] = benchRow()
	}
	env := &RowEnv{Rows: rows}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env.Idx = i % len(rows)
		p.EvalBool(env)
	}
}

func BenchmarkCompile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile("iff(ubits(l, 0, 8) == 1, ubits(l, 8, 16) * 0.1, null)", testSchema); err != nil {
			b.Fatal(err)
		}
	}
}
