package expr

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses an expression string into an AST. Rule sources of the
// form "v = <expr>" (the paper's Table 1 notation) are accepted: a
// leading "<ident> =" is stripped.
func Parse(src string) (Node, error) {
	src = stripRuleLHS(src)
	p := &parser{lex: lexer{src: src}}
	p.advance()
	n, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errAt(p.tok.pos, "unexpected %s in %q", p.tok, src)
	}
	return n, nil
}

// PosAt converts a byte offset in src to a 1-based line and column
// (columns count bytes). Offsets past the end report the position just
// after the last byte.
func PosAt(src string, off int) (line, col int) {
	if off > len(src) {
		off = len(src)
	}
	line, col = 1, 1
	for i := 0; i < off; i++ {
		if src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// errAt builds a parse error carrying the 1-based line/col of the byte
// offset pos — multi-line query text needs more than a flat offset.
func (p *parser) errAt(pos int, format string, args ...any) error {
	line, col := PosAt(p.lex.src, pos)
	return fmt.Errorf("expr: %s at line %d, col %d", fmt.Sprintf(format, args...), line, col)
}

// MustParse is Parse for expressions known valid at compile time; it
// panics on error. Intended for tests and built-in rule tables.
func MustParse(src string) Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

// stripRuleLHS removes a leading "name =" (single equals, one
// identifier) so paper-style rule text parses directly.
func stripRuleLHS(src string) string {
	s := strings.TrimSpace(src)
	i := 0
	for i < len(s) && isIdentPart(s[i]) {
		i++
	}
	if i == 0 || i >= len(s) {
		return src
	}
	j := i
	for j < len(s) && (s[j] == ' ' || s[j] == '\t') {
		j++
	}
	// "=" but not "==".
	if j < len(s) && s[j] == '=' && (j+1 >= len(s) || s[j+1] != '=') {
		return s[j+1:]
	}
	return src
}

type parser struct {
	lex lexer
	tok token
}

func (p *parser) advance() { p.tok = p.lex.next() }

// Binding powers for a Pratt parser.
func bindingPower(op string) int {
	switch op {
	case "||":
		return 1
	case "&&":
		return 2
	case "==", "!=", "<", "<=", ">", ">=":
		return 3
	case "+", "-":
		return 4
	case "*", "/", "%":
		return 5
	default:
		return 0
	}
}

func (p *parser) parseExpr(minBP int) (Node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		if p.tok.kind == tokOp && p.tok.text == "?" && minBP == 0 {
			p.advance()
			a, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			if p.tok.kind != tokOp || p.tok.text != ":" {
				return nil, p.errAt(p.tok.pos, "expected ':' in conditional, got %s", p.tok)
			}
			p.advance()
			b, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			left = &Cond{C: left, A: a, B: b}
			continue
		}
		if p.tok.kind != tokOp {
			break
		}
		bp := bindingPower(p.tok.text)
		if bp == 0 || bp < minBP {
			break
		}
		op := p.tok.text
		p.advance()
		right, err := p.parseExpr(bp + 1)
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Node, error) {
	if p.tok.kind == tokOp && (p.tok.text == "-" || p.tok.text == "!") {
		op := p.tok.text
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: op, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Node, error) {
	switch p.tok.kind {
	case tokNumber:
		text := p.tok.text
		p.advance()
		if strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X") {
			i, err := strconv.ParseInt(text, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("expr: bad hex literal %q: %v", text, err)
			}
			return &Lit{Val: valueLit{isInt: true, i: i}}, nil
		}
		if !strings.ContainsAny(text, ".eE") {
			i, err := strconv.ParseInt(text, 10, 64)
			if err == nil {
				return &Lit{Val: valueLit{isInt: true, i: i}}, nil
			}
		}
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("expr: bad number %q: %v", text, err)
		}
		return &Lit{Val: valueLit{isFloat: true, f: f}}, nil

	case tokString:
		s := p.tok.text
		p.advance()
		return &Lit{Val: valueLit{isStr: true, s: s}}, nil

	case tokIdent:
		name := p.tok.text
		p.advance()
		switch name {
		case "true":
			return &Lit{Val: valueLit{isBool: true, b: true}}, nil
		case "false":
			return &Lit{Val: valueLit{isBool: true}}, nil
		case "null":
			return &Lit{Val: valueLit{isNull: true}}, nil
		}
		if p.tok.kind == tokOp && p.tok.text == "(" {
			p.advance()
			var args []Node
			if !(p.tok.kind == tokOp && p.tok.text == ")") {
				for {
					a, err := p.parseExpr(0)
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.tok.kind == tokOp && p.tok.text == "," {
						p.advance()
						continue
					}
					break
				}
			}
			if !(p.tok.kind == tokOp && p.tok.text == ")") {
				return nil, p.errAt(p.tok.pos, "expected ')' after arguments of %s, got %s", name, p.tok)
			}
			p.advance()
			return &Call{Fn: name, Args: args}, nil
		}
		return &Ident{Name: name}, nil

	case tokOp:
		if p.tok.text == "(" {
			p.advance()
			n, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			if !(p.tok.kind == tokOp && p.tok.text == ")") {
				return nil, p.errAt(p.tok.pos, "expected ')', got %s", p.tok)
			}
			p.advance()
			return n, nil
		}
	}
	return nil, p.errAt(p.tok.pos, "unexpected %s", p.tok)
}
