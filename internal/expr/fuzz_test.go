package expr

import (
	"testing"

	"ivnt/internal/relation"
)

// FuzzParseAndEval hardens the rule parser and evaluator: arbitrary
// rule text must parse-or-error without panicking, and whatever parses
// must evaluate without panicking on an arbitrary row — identically on
// the recursive tree walker and the flat bytecode machine.
func FuzzParseAndEval(f *testing.F) {
	seeds := []string{
		"0.5 * ube(lrel, 0, 2)",
		"v = l + 2",
		"iff(ubits(l, 0, 1) == 1, slice(l, 1, 2), null)",
		"gap(t) > 0.15 && !isnull(lag(v))",
		"lookup(byteat(l, 0), '0=off;1=on')",
		"((((((1))))))",
		"'unterminated",
		"a @@ b",
		"-9999999999999999999999",
		"x ? y : z ? w : q",
	}
	for _, s := range seeds {
		f.Add(s, []byte{0x5A, 0x01})
	}
	schema := relation.NewSchema(
		relation.Column{Name: "t", Kind: relation.KindFloat},
		relation.Column{Name: "v", Kind: relation.KindFloat},
		relation.Column{Name: "l", Kind: relation.KindBytes},
		relation.Column{Name: "lrel", Kind: relation.KindBytes},
	)
	f.Fuzz(func(t *testing.T, src string, payload []byte) {
		p, err := Compile(src, schema)
		if err != nil {
			return
		}
		row := relation.Row{
			relation.Float(1.5), relation.Float(42),
			relation.Bytes(payload), relation.Bytes(payload),
		}
		_ = p.Eval(SingleRowEnv{Row: row})
		// Window path too, cross-checked against the flat machine.
		rows := []relation.Row{row, row}
		fp := p.Flatten()
		var m Machine
		for idx := range rows {
			want := p.Eval(&RowEnv{Rows: rows, Idx: idx})
			got := m.EvalAt(fp, rows, idx)
			if !valuesBitEqual(got, want) {
				t.Fatalf("flat/tree divergence on %q at row %d: flat=%v tree=%v", src, idx, got, want)
			}
		}
	})
}
