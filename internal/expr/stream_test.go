package expr

import (
	"strings"
	"testing"
)

// Parse errors must report line/col, not a flat byte offset: the query
// frontend hands multi-line SQL text to this parser and a raw offset is
// unusable there.
func TestParseErrorHasLineCol(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"a + #", "line 1, col 5"},
		{"a +\n  # + b", "line 2, col 3"},
		{"(a + b", "line 1, col 7"},
		{"x > 1 ?\n 2\n: ;", "line 3, col 3"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Fatalf("Parse(%q): expected error", c.src)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error %q: want substring %q", c.src, err, c.want)
		}
		if strings.Contains(err.Error(), "offset") {
			t.Errorf("Parse(%q) error %q still reports a raw offset", c.src, err)
		}
	}
}

func TestPosAt(t *testing.T) {
	src := "ab\ncd\n"
	cases := []struct{ off, line, col int }{
		{0, 1, 1}, {1, 1, 2}, {2, 1, 3}, {3, 2, 1}, {5, 2, 3}, {6, 3, 1}, {99, 3, 1},
	}
	for _, c := range cases {
		if l, col := PosAt(src, c.off); l != c.line || col != c.col {
			t.Errorf("PosAt(%q, %d) = %d:%d, want %d:%d", src, c.off, l, col, c.line, c.col)
		}
	}
}

// Stream must stop an expression parse at an identifier in operator
// position (an embedding grammar's keyword) and report the exact byte
// range of the expression it consumed.
func TestStreamParseExprStopsAtKeyword(t *testing.T) {
	src := "ts >= 100 && id == 3 FROM trace"
	s := NewStream(src)
	n, start, end, err := s.ParseExpr()
	if err != nil {
		t.Fatalf("ParseExpr: %v", err)
	}
	if got := strings.TrimSpace(src[start:end]); got != "ts >= 100 && id == 3" {
		t.Fatalf("expression slice = %q", got)
	}
	if n == nil {
		t.Fatal("nil node")
	}
	cur := s.Cur()
	if cur.Kind != TokIdent || cur.Text != "FROM" {
		t.Fatalf("current token after expr = %v, want ident FROM", cur)
	}
	s.Advance()
	if cur = s.Cur(); cur.Text != "trace" {
		t.Fatalf("after advance = %v, want trace", cur)
	}
	s.Advance()
	if cur = s.Cur(); cur.Kind != TokEOF {
		t.Fatalf("want EOF, got %v", cur)
	}
}
