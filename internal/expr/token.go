// Package expr implements the small expression language in which the
// framework's parameterization is written: interpretation rules u
// (Table 1, "Int.rule: v = 0.5*l"), reduction constraint functions f
// (Eq. 1) and extension rules E (Sec. 4.1) are all expressions over the
// columns of a trace row.
//
// Keeping rules as source text — data, not Go code — is what makes the
// pipeline distributable: a driver ships rule strings to remote
// executors, which compile and apply them, exactly as the paper ships
// its parameterization into Spark jobs.
//
// The language is a conventional infix expression grammar with column
// references, arithmetic, comparisons, boolean connectives, a function
// library (byte/bit payload accessors, math, string helpers) and window
// access (lag / gap) for temporal constraints such as cycle-time
// violations.
package expr

import "fmt"

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokNumber
	tokString
	tokIdent
	tokOp // + - * / % ! < <= > >= == != && || ( ) , ? :
	tokInvalid
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of expression"
	case tokNumber, tokIdent, tokOp:
		return fmt.Sprintf("%q", t.text)
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("invalid token %q", t.text)
	}
}

type lexer struct {
	src string
	pos int
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '.'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next scans the next token.
func (l *lexer) next() token {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t' || l.src[l.pos] == '\n' || l.src[l.pos] == '\r') {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		return l.lexNumber()
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}
	case c == '\'' || c == '"':
		return l.lexString(c)
	}
	// Operators, longest match first.
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "==", "!=", "&&", "||":
		l.pos += 2
		return token{kind: tokOp, text: two, pos: start}
	}
	switch c {
	case '+', '-', '*', '/', '%', '!', '<', '>', '(', ')', ',', '?', ':':
		l.pos++
		return token{kind: tokOp, text: string(c), pos: start}
	case '=':
		// Accept single '=' as equality for rule-author convenience
		// ("v = 0.5*l" style rules strip the lhs elsewhere).
		l.pos++
		return token{kind: tokOp, text: "==", pos: start}
	}
	l.pos++
	return token{kind: tokInvalid, text: string(c), pos: start}
}

func (l *lexer) lexNumber() token {
	start := l.pos
	if l.src[l.pos] == '0' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == 'x' || l.src[l.pos+1] == 'X') {
		l.pos += 2
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) ||
			(l.src[l.pos] >= 'a' && l.src[l.pos] <= 'f') ||
			(l.src[l.pos] >= 'A' && l.src[l.pos] <= 'F')) {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}
	}
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if (c == 'e' || c == 'E') && l.pos+1 < len(l.src) {
			nc := l.src[l.pos+1]
			if isDigit(nc) || ((nc == '+' || nc == '-') && l.pos+2 < len(l.src) && isDigit(l.src[l.pos+2])) {
				l.pos += 2
				for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
					l.pos++
				}
				break
			}
		}
		break
	}
	return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}
}

func (l *lexer) lexString(quote byte) token {
	start := l.pos
	l.pos++ // opening quote
	var out []byte
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\\' && l.pos+1 < len(l.src) {
			nc := l.src[l.pos+1]
			switch nc {
			case 'n':
				out = append(out, '\n')
			case 't':
				out = append(out, '\t')
			case '\\', '\'', '"':
				out = append(out, nc)
			default:
				out = append(out, nc)
			}
			l.pos += 2
			continue
		}
		if c == quote {
			l.pos++
			return token{kind: tokString, text: string(out), pos: start}
		}
		out = append(out, c)
		l.pos++
	}
	return token{kind: tokInvalid, text: l.src[start:], pos: start}
}
