package expr

import (
	"math"
	"strings"

	"ivnt/internal/relation"
)

// This file holds the single source of truth for operator and builtin
// semantics. Both evaluation paths — the recursive tree walker in
// compile.go (the reference) and the flat bytecode machine in flat.go
// (the vectorized fast path) — delegate here, so the two cannot drift
// apart: a semantic change lands in exactly one place and the
// differential harness checks the rest.

// BinOp identifies a non-short-circuit binary operator. The boolean
// connectives && and || are not BinOps: they need lazy right-hand
// evaluation, which the tree walker does by recursion and the flat
// machine by conditional jumps.
type BinOp uint8

const (
	BinEq BinOp = iota
	BinNe
	BinLt
	BinLe
	BinGt
	BinGe
	BinAdd
	BinSub
	BinMul
	BinDiv
	BinMod
)

// EvalBinary applies a strict binary operator to two already-evaluated
// operands, with the engine's null discipline: comparisons against null
// are false, arithmetic on null is null, division by zero is null.
func EvalBinary(op BinOp, a, b relation.Value) relation.Value {
	switch op {
	case BinEq:
		return relation.Bool(a.Equal(b))
	case BinNe:
		return relation.Bool(!a.Equal(b))
	case BinLt, BinLe, BinGt, BinGe:
		if a.IsNull() || b.IsNull() {
			return relation.Bool(false)
		}
		c := compareForOrder(a, b)
		switch op {
		case BinLt:
			return relation.Bool(c < 0)
		case BinLe:
			return relation.Bool(c <= 0)
		case BinGt:
			return relation.Bool(c > 0)
		default:
			return relation.Bool(c >= 0)
		}
	}
	// Arithmetic.
	if a.IsNull() || b.IsNull() {
		return relation.Null()
	}
	if op == BinAdd && (a.K == relation.KindString || b.K == relation.KindString) {
		return relation.Str(a.AsString() + b.AsString())
	}
	switch op {
	case BinAdd:
		if bothInt(a, b) {
			return relation.Int(a.I + b.I)
		}
		return relation.Float(a.AsFloat() + b.AsFloat())
	case BinSub:
		if bothInt(a, b) {
			return relation.Int(a.I - b.I)
		}
		return relation.Float(a.AsFloat() - b.AsFloat())
	case BinMul:
		if bothInt(a, b) {
			return relation.Int(a.I * b.I)
		}
		return relation.Float(a.AsFloat() * b.AsFloat())
	case BinDiv:
		f := b.AsFloat()
		if f == 0 {
			return relation.Null()
		}
		return relation.Float(a.AsFloat() / f)
	case BinMod:
		if bothInt(a, b) {
			if b.I == 0 {
				return relation.Null()
			}
			return relation.Int(a.I % b.I)
		}
		f := b.AsFloat()
		if f == 0 {
			return relation.Null()
		}
		return relation.Float(math.Mod(a.AsFloat(), f))
	}
	return relation.Null()
}

// EvalNeg applies unary minus: negates ints and floats, anything else
// evaluates to null.
func EvalNeg(v relation.Value) relation.Value {
	switch v.K {
	case relation.KindInt:
		return relation.Int(-v.I)
	case relation.KindFloat:
		return relation.Float(-v.F)
	default:
		return relation.Null()
	}
}

// Builtin identifies an eagerly-evaluated builtin function. Lazy forms
// (iff, coalesce) and window functions (lag, gap, delta) are not
// Builtins: the flat machine lowers them to jumps and dedicated window
// opcodes, and the tree walker special-cases them before argument
// evaluation.
type Builtin uint8

const (
	BAbs Builtin = iota
	BMin
	BMax
	BFloor
	BCeil
	BRound
	BSqrt
	BPow
	BLog
	BExp
	BInt
	BFloat
	BStr
	BContains
	BStartswith
	BEndswith
	BLower
	BUpper
	BStrlen
	BIsnull
	BByteat
	BPaylen
	BUbits
	BSbits
	BUlbits
	BSlbits
	BUbe
	BUle
	BLookup
	BSlice
)

// builtinByName maps source-level function names to Builtin codes.
// Names absent here (lag, gap, delta, iff, coalesce) are handled
// structurally by each evaluation path.
var builtinByName = map[string]Builtin{
	"abs": BAbs, "min": BMin, "max": BMax, "floor": BFloor,
	"ceil": BCeil, "round": BRound, "sqrt": BSqrt, "pow": BPow,
	"log": BLog, "exp": BExp,
	"int": BInt, "float": BFloat, "str": BStr,
	"contains": BContains, "startswith": BStartswith, "endswith": BEndswith,
	"lower": BLower, "upper": BUpper, "strlen": BStrlen,
	"isnull": BIsnull, "byteat": BByteat, "paylen": BPaylen,
	"ubits": BUbits, "sbits": BSbits, "ulbits": BUlbits, "slbits": BSlbits,
	"ube": BUbe, "ule": BUle,
	"lookup": BLookup, "slice": BSlice,
}

// CallBuiltin applies an eager builtin to evaluated arguments. It never
// retains args: callers may pass a slice of their scratch stack.
func CallBuiltin(fn Builtin, args []relation.Value) relation.Value {
	switch fn {
	case BAbs:
		if args[0].K == relation.KindInt {
			if args[0].I < 0 {
				return relation.Int(-args[0].I)
			}
			return args[0]
		}
		return relation.Float(math.Abs(args[0].AsFloat()))
	case BMin, BMax:
		out := args[0]
		for _, v := range args[1:] {
			c := compareForOrder(v, out)
			if (fn == BMin && c < 0) || (fn == BMax && c > 0) {
				out = v
			}
		}
		return out
	case BFloor:
		return relation.Float(math.Floor(args[0].AsFloat()))
	case BCeil:
		return relation.Float(math.Ceil(args[0].AsFloat()))
	case BRound:
		return relation.Float(math.Round(args[0].AsFloat()))
	case BSqrt:
		return relation.Float(math.Sqrt(args[0].AsFloat()))
	case BPow:
		return relation.Float(math.Pow(args[0].AsFloat(), args[1].AsFloat()))
	case BLog:
		return relation.Float(math.Log(args[0].AsFloat()))
	case BExp:
		return relation.Float(math.Exp(args[0].AsFloat()))
	case BInt:
		return relation.Int(args[0].AsInt())
	case BFloat:
		return relation.Float(args[0].AsFloat())
	case BStr:
		return relation.Str(args[0].AsString())
	case BContains:
		return relation.Bool(strings.Contains(args[0].AsString(), args[1].AsString()))
	case BStartswith:
		return relation.Bool(strings.HasPrefix(args[0].AsString(), args[1].AsString()))
	case BEndswith:
		return relation.Bool(strings.HasSuffix(args[0].AsString(), args[1].AsString()))
	case BLower:
		return relation.Str(strings.ToLower(args[0].AsString()))
	case BUpper:
		return relation.Str(strings.ToUpper(args[0].AsString()))
	case BStrlen:
		return relation.Int(int64(len(args[0].AsString())))
	case BIsnull:
		return relation.Bool(args[0].IsNull())
	case BByteat:
		b := args[0].B
		i := int(args[1].AsInt())
		if args[0].K != relation.KindBytes || i < 0 || i >= len(b) {
			return relation.Null()
		}
		return relation.Int(int64(b[i]))
	case BPaylen:
		if args[0].K != relation.KindBytes {
			return relation.Null()
		}
		return relation.Int(int64(len(args[0].B)))
	case BUbits, BSbits:
		return extractBits(args[0], int(args[1].AsInt()), int(args[2].AsInt()), fn == BSbits)
	case BUlbits, BSlbits:
		return extractBitsLE(args[0], int(args[1].AsInt()), int(args[2].AsInt()), fn == BSlbits)
	case BUbe, BUle:
		return extractBytes(args[0], int(args[1].AsInt()), int(args[2].AsInt()), fn == BUle)
	case BLookup:
		return lookupTable(args[0], args[1].AsString())
	case BSlice:
		return slicePayload(args[0], int(args[1].AsInt()), int(args[2].AsInt()))
	}
	return relation.Null()
}
