package expr

import (
	"math"
	"testing"

	"ivnt/internal/relation"
)

// flatCorpus exercises every opcode, every builtin, the short-circuit
// lowerings, and the null discipline. Each source is evaluated by both
// paths over a varied row window and compared bit-for-bit.
var flatCorpus = []string{
	// Literals, columns, unary.
	"null", "true", "false", "42", "4.5", "'sid'", "t", "n", "-t", "-n", "!true", "!v",
	// Arithmetic, comparisons, string concat, division by zero.
	"t + v", "n + n", "t - v", "n - 1", "t * v", "n * 3", "t / v", "t / 0",
	"n % 3", "n % 0", "t % 0.7", "t % 0", "sid + '!'", "1 + '@'",
	"t == v", "t != v", "n == 7", "t < v", "t <= v", "t > v", "t >= v",
	"sid < 'z'", "null < 1", "1 < null", "null == null", "null != 1",
	// Short-circuit connectives (right side must not run when skipped:
	// 1/0 is null → false, harmless, but proves coercion).
	"t > 0 && v > 0", "t > 1e9 && v > 0", "t > 0 || v > 0", "t > 1e9 || v > 0",
	"t && v", "null && true", "null || true", "t > 0 && null",
	// Ternary and iff.
	"t > v ? t : v", "n > 0 ? 'pos' : 'neg'", "iff(n > 0, t, v)",
	"iff(isnull(lag(v)), 0.0, 1.0)",
	// Coalesce.
	"coalesce(null, t)", "coalesce(t, v)", "coalesce(null, null)",
	"coalesce(1/0, n % 0, sid)",
	// Eager builtins, one per Builtin code.
	"abs(-t)", "abs(n)", "abs(0 - n)", "min(t, v, n)", "max(t, v, n)",
	"floor(t)", "ceil(t)", "round(t)", "sqrt(v)", "pow(t, 2)", "log(v)",
	"exp(1)", "int(t)", "float(n)", "str(n)",
	"contains(sid, 'po')", "startswith(sid, 'w')", "endswith(sid, 's')",
	"lower(sid)", "upper(sid)", "strlen(sid)", "isnull(t)", "isnull(null)",
	"byteat(l, 1)", "byteat(l, 99)", "paylen(l)", "paylen(t)",
	"ubits(l, 4, 8)", "sbits(l, 4, 8)", "ulbits(l, 3, 7)", "slbits(l, 3, 7)",
	"ube(l, 0, 2)", "ule(l, 0, 2)",
	"lookup(byteat(l, 0), '90=on;1=off')", "lookup(n, '7=seven')",
	"slice(l, 1, 2)", "slice(l, 3, 9)",
	// Window functions.
	"lag(v)", "lag(v, 2)", "lag(v, 0)", "lag(v, -1)", "lag(v, n)",
	"lag(v, 99)", "gap(t)", "delta(v)", "gap(t) > 0.15 && !isnull(lag(v))",
	// Nesting that stresses MaxStack and jump patching.
	"iff(ubits(l, 0, 8) == 90, ubits(l, 8, 16) * 0.1, null)",
	"min(max(t, v), max(n, 2), coalesce(lag(t), t)) + (t > v ? 1 : -1)",
	"coalesce(iff(t > v, null, sid), str(pow(2, min(n, 4))))",
}

// flatRows builds a window with nulls, short rows at the type level
// (nulls in cells), and value variety so lag/gap paths all fire.
func flatRows() []relation.Row {
	return []relation.Row{
		{relation.Float(1.0), relation.Null(), relation.Str("alpha"), relation.Bytes([]byte{0x01}), relation.Int(-3)},
		{relation.Float(1.2), relation.Float(40), relation.Str("wpos"), relation.Bytes([]byte{0x5A, 0x01, 0xFF, 0x80}), relation.Int(7)},
		{relation.Float(2.5), relation.Float(45), relation.Str("wpos"), relation.Bytes([]byte{0x5A, 0x01, 0xFF, 0x80}), relation.Int(7)},
		{relation.Null(), relation.Float(45), relation.Str(""), relation.Null(), relation.Int(0)},
		{relation.Float(2.9), relation.Float(-45), relation.Str("zeta"), relation.Bytes(nil), relation.Int(2)},
	}
}

// valuesBitEqual compares Values with float bit patterns, the same
// contract the differential harness uses.
func valuesBitEqual(a, b relation.Value) bool {
	if a.K != b.K || a.I != b.I || a.S != b.S {
		return false
	}
	if math.Float64bits(a.F) != math.Float64bits(b.F) {
		return false
	}
	if len(a.B) != len(b.B) {
		return false
	}
	for i := range a.B {
		if a.B[i] != b.B[i] {
			return false
		}
	}
	return true
}

// TestFlatMatchesTree is the package-local differential check: the
// bytecode machine must agree with the tree walker bit-for-bit on
// every corpus expression at every cursor position.
func TestFlatMatchesTree(t *testing.T) {
	rows := flatRows()
	var m Machine
	for _, src := range flatCorpus {
		p, err := Compile(src, testSchema)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		fp := p.Flatten()
		if fp.Window != p.UsesWindow() {
			t.Errorf("%q: flat window=%v, tree=%v", src, fp.Window, p.UsesWindow())
		}
		for idx := range rows {
			want := p.Eval(&RowEnv{Rows: rows, Idx: idx})
			got := m.EvalAt(fp, rows, idx)
			if !valuesBitEqual(got, want) {
				t.Errorf("%q at row %d: flat=%v tree=%v\n%s", src, idx, got, want, fp.Disasm())
			}
		}
	}
}

// TestFlattenIdempotent checks the cached FlatProgram is returned on
// repeat calls, including concurrent ones.
func TestFlattenIdempotent(t *testing.T) {
	p, err := Compile("t + v", testSchema)
	if err != nil {
		t.Fatal(err)
	}
	first := p.Flatten()
	done := make(chan *FlatProgram, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- p.Flatten() }()
	}
	for i := 0; i < 8; i++ {
		if fp := <-done; fp != first {
			t.Fatal("Flatten returned a different program on repeat call")
		}
	}
}

// TestFlatMaxStack verifies the emission-time stack bound is exact
// enough: evaluating with a stack of exactly MaxStack must not panic,
// and MaxStack must be positive.
func TestFlatMaxStack(t *testing.T) {
	rows := flatRows()
	for _, src := range flatCorpus {
		p, err := Compile(src, testSchema)
		if err != nil {
			t.Fatal(err)
		}
		fp := p.Flatten()
		if fp.MaxStack < 1 {
			t.Errorf("%q: MaxStack = %d", src, fp.MaxStack)
			continue
		}
		m := &Machine{stack: make([]relation.Value, fp.MaxStack)}
		for idx := range rows {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("%q: panic with stack=%d: %v\n%s", src, fp.MaxStack, r, fp.Disasm())
					}
				}()
				m.EvalAt(fp, rows, idx)
			}()
		}
	}
}

// TestRemapColumns checks column operands are rewritten and the
// original program is untouched.
func TestRemapColumns(t *testing.T) {
	p, err := Compile("v + lag(v) + gap(t)", testSchema)
	if err != nil {
		t.Fatal(err)
	}
	fp := p.Flatten()
	shift := fp.RemapColumns(func(c int) int { return c + 10 })
	for i, ins := range shift.Code {
		switch ins.Op {
		case OpPushCol, OpLag, OpLagDyn, OpGapDelta:
			if ins.A != fp.Code[i].A+10 {
				t.Fatalf("ins %d: remapped A=%d, original A=%d", i, ins.A, fp.Code[i].A)
			}
		default:
			if ins != fp.Code[i] {
				t.Fatalf("ins %d: non-column instruction changed: %v vs %v", i, ins, fp.Code[i])
			}
		}
	}
	// Remapping again from the original must still see original operands.
	again := fp.RemapColumns(func(c int) int { return c })
	for i := range again.Code {
		if again.Code[i] != fp.Code[i] {
			t.Fatalf("original program mutated at ins %d", i)
		}
	}
}

func BenchmarkFlatEvalInterpretationRule(b *testing.B) {
	p := benchProgram(b, "0.5 * ube(l, 0, 2)")
	fp := p.Flatten()
	rows := []relation.Row{benchRow()}
	var m Machine
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.EvalAt(fp, rows, 0)
	}
}

func BenchmarkFlatEvalConstraintWithWindow(b *testing.B) {
	p := benchProgram(b, "isnull(lag(v)) || v != lag(v) || gap(t) > 0.15")
	fp := p.Flatten()
	rows := make([]relation.Row, 64)
	for i := range rows {
		rows[i] = benchRow()
	}
	var m Machine
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.EvalBoolAt(fp, rows, i%len(rows))
	}
}
