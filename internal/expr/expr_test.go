package expr

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"ivnt/internal/relation"
)

var testSchema = relation.NewSchema(
	relation.Column{Name: "t", Kind: relation.KindFloat},
	relation.Column{Name: "v", Kind: relation.KindFloat},
	relation.Column{Name: "sid", Kind: relation.KindString},
	relation.Column{Name: "l", Kind: relation.KindBytes},
	relation.Column{Name: "n", Kind: relation.KindInt},
)

func evalOn(t *testing.T, src string, row relation.Row) relation.Value {
	t.Helper()
	p, err := Compile(src, testSchema)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return p.Eval(SingleRowEnv{Row: row})
}

func row(t, v float64, sid string, l []byte, n int64) relation.Row {
	return relation.Row{relation.Float(t), relation.Float(v), relation.Str(sid), relation.Bytes(l), relation.Int(n)}
}

func TestArithmetic(t *testing.T) {
	r := row(2, 45, "wpos", []byte{0x5A, 0x01}, 7)
	cases := []struct {
		src  string
		want float64
	}{
		{"1 + 2", 3},
		{"2 * 3 + 4", 10},
		{"2 + 3 * 4", 14},
		{"(2 + 3) * 4", 20},
		{"10 / 4", 2.5},
		{"7 % 3", 1},
		{"-v", -45},
		{"0.5 * v", 22.5},
		{"v - t", 43},
		{"2e2 + 1", 201},
		{"0x10 + 1", 17},
		{"abs(-3)", 3},
		{"min(4, 2, 9)", 2},
		{"max(4, 2, 9)", 9},
		{"floor(2.7)", 2},
		{"ceil(2.2)", 3},
		{"round(2.5)", 3},
		{"sqrt(16)", 4},
		{"pow(2, 10)", 1024},
	}
	for _, c := range cases {
		got := evalOn(t, c.src, r)
		if got.AsFloat() != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestIntegerArithmeticStaysInt(t *testing.T) {
	r := row(0, 0, "", nil, 7)
	got := evalOn(t, "n * 2 + 1", r)
	if got.K != relation.KindInt || got.I != 15 {
		t.Fatalf("int arithmetic: %#v", got)
	}
	got = evalOn(t, "n / 2", r)
	if got.K != relation.KindFloat || got.F != 3.5 {
		t.Fatalf("division must be float: %#v", got)
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	r := row(2, 45, "wpos", nil, 7)
	cases := []struct {
		src  string
		want bool
	}{
		{"v > 40", true},
		{"v >= 45", true},
		{"v < 45", false},
		{"v <= 44", false},
		{"v == 45", true},
		{"v != 45", false},
		{"sid == 'wpos'", true},
		{"sid != \"wvel\"", true},
		{"v > 40 && t < 3", true},
		{"v > 50 || t < 3", true},
		{"!(v > 50)", true},
		{"true && false", false},
		{"v > 40 ? true : false", true},
		{"iff(v > 100, true, false)", false},
		{"contains(sid, 'po')", true},
		{"startswith(sid, 'w')", true},
		{"endswith(sid, 's')", true},
		{"isnull(null)", true},
		{"isnull(v)", false},
	}
	for _, c := range cases {
		got := evalOn(t, c.src, r)
		if got.AsBool() != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestRuleLHSStripping(t *testing.T) {
	// Paper Table 1 notation: "v = 0.5 * l" where l is the payload int.
	r := row(0, 0, "", nil, 100)
	got := evalOn(t, "v2 = 0.5 * n", r)
	if got.AsFloat() != 50 {
		t.Fatalf("rule with lhs: %v", got)
	}
	// "==" must not be treated as assignment.
	got = evalOn(t, "n == 100", r)
	if !got.AsBool() {
		t.Fatal("equality broken by lhs stripping")
	}
}

func TestPayloadAccessors(t *testing.T) {
	// payload: 0x5A 0x01 0xFF 0x80
	r := row(0, 0, "", []byte{0x5A, 0x01, 0xFF, 0x80}, 0)
	cases := []struct {
		src  string
		want int64
	}{
		{"byteat(l, 0)", 0x5A},
		{"byteat(l, 3)", 0x80},
		{"paylen(l)", 4},
		{"ube(l, 0, 2)", 0x5A01},
		{"ule(l, 0, 2)", 0x015A},
		{"ube(l, 2, 1)", 0xFF},
		{"ubits(l, 0, 8)", 0x5A},
		{"ubits(l, 4, 8)", 0xA0},
		{"ubits(l, 0, 4)", 0x5},
		{"ubits(l, 16, 8)", 0xFF},
		{"sbits(l, 16, 8)", -1},
		{"sbits(l, 24, 8)", -128},
		{"ubits(l, 24, 8)", 0x80},
	}
	for _, c := range cases {
		got := evalOn(t, c.src, r)
		if got.AsInt() != c.want {
			t.Errorf("%q = %v, want %d", c.src, got, c.want)
		}
	}
}

func TestPayloadOutOfRangeIsNull(t *testing.T) {
	r := row(0, 0, "", []byte{1, 2}, 0)
	for _, src := range []string{
		"byteat(l, 2)", "byteat(l, -1)", "ube(l, 1, 2)", "ubits(l, 9, 8)",
		"ubits(l, 0, 65)", "ube(l, 0, 9)",
	} {
		if got := evalOn(t, src, r); !got.IsNull() {
			t.Errorf("%q = %v, want null", src, got)
		}
	}
}

func TestNullPropagation(t *testing.T) {
	r := relation.Row{relation.Null(), relation.Null(), relation.Null(), relation.Null(), relation.Null()}
	if got := evalOn(t, "v + 1", r); !got.IsNull() {
		t.Errorf("null + 1 = %v", got)
	}
	if got := evalOn(t, "v > 0", r); got.AsBool() {
		t.Errorf("null > 0 must be false")
	}
	if got := evalOn(t, "coalesce(v, 5)", r); got.AsFloat() != 5 {
		t.Errorf("coalesce = %v", got)
	}
	if got := evalOn(t, "1 / 0", r); !got.IsNull() {
		t.Errorf("division by zero must be null, got %v", got)
	}
	if got := evalOn(t, "n % 0", r); !got.IsNull() {
		t.Errorf("mod by zero must be null, got %v", got)
	}
}

func TestWindowFunctions(t *testing.T) {
	rows := []relation.Row{
		row(2.0, 45, "wpos", nil, 0),
		row(2.5, 60, "wpos", nil, 0),
		row(2.9, 70, "wpos", nil, 0),
	}
	p, err := Compile("gap(t)", testSchema)
	if err != nil {
		t.Fatal(err)
	}
	if !p.UsesWindow() {
		t.Fatal("gap must report window usage")
	}
	env := &RowEnv{Rows: rows}
	env.Idx = 0
	if got := p.Eval(env); !got.IsNull() {
		t.Fatalf("gap at head = %v, want null", got)
	}
	env.Idx = 1
	if got := p.Eval(env); math.Abs(got.AsFloat()-0.5) > 1e-12 {
		t.Fatalf("gap = %v, want 0.5", got)
	}
	lagP, err := Compile("lag(v, 2)", testSchema)
	if err != nil {
		t.Fatal(err)
	}
	env.Idx = 2
	if got := lagP.Eval(env); got.AsFloat() != 45 {
		t.Fatalf("lag(v,2) = %v, want 45", got)
	}
	env.Idx = 1
	if got := lagP.Eval(env); !got.IsNull() {
		t.Fatalf("lag beyond head = %v, want null", got)
	}
}

func TestCycleTimeViolationRule(t *testing.T) {
	// The paper's canonical constraint: mark rows whose temporal gap to
	// the previous row exceeds the expected cycle time.
	rows := []relation.Row{
		row(0.0, 1, "s", nil, 0),
		row(0.1, 2, "s", nil, 0),
		row(0.5, 3, "s", nil, 0), // violation: gap 0.4 > 0.15
		row(0.6, 4, "s", nil, 0),
	}
	p, err := Compile("gap(t) > 0.15", testSchema)
	if err != nil {
		t.Fatal(err)
	}
	env := &RowEnv{Rows: rows}
	want := []bool{false, false, true, false}
	for i, w := range want {
		env.Idx = i
		if got := p.EvalBool(env); got != w {
			t.Errorf("row %d: violation = %v, want %v", i, got, w)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"v +",
		"(v",
		"unknowncol + 1",
		"nosuchfn(1)",
		"lag(1, 2)",     // first arg must be column
		"byteat(l)",     // arity
		"min(1)",        // arity
		"v ? 1",         // incomplete conditional
		"'unterminated", // bad string
		"v @ 2",         // invalid char
		"1 2",           // trailing token
	}
	for _, src := range bad {
		if _, err := Compile(src, testSchema); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestStringConcatAndConversions(t *testing.T) {
	r := row(0, 3, "ab", nil, 0)
	if got := evalOn(t, "sid + 'c'", r); got.AsString() != "abc" {
		t.Errorf("concat = %q", got)
	}
	if got := evalOn(t, "str(n) + upper(sid)", r); got.AsString() != "0AB" {
		t.Errorf("mixed = %q", got)
	}
	if got := evalOn(t, "int(v)", r); got.K != relation.KindInt || got.I != 3 {
		t.Errorf("int() = %#v", got)
	}
	if got := evalOn(t, "strlen(sid)", r); got.AsInt() != 2 {
		t.Errorf("strlen = %v", got)
	}
	if got := evalOn(t, "lower('ABC')", r); got.AsString() != "abc" {
		t.Errorf("lower = %v", got)
	}
}

func TestIdentsAndColumns(t *testing.T) {
	n := MustParse("v > 0 && gap(t) > 0.1 && sid == 'x'")
	ids := Idents(n)
	want := []string{"v", "t", "sid"}
	if strings.Join(ids, ",") != strings.Join(want, ",") {
		t.Fatalf("Idents = %v, want %v", ids, want)
	}
	if !UsesWindow(n) {
		t.Fatal("UsesWindow false")
	}
	if UsesWindow(MustParse("v > 0")) {
		t.Fatal("UsesWindow true without window fn")
	}
}

func TestParseRoundTripProperty(t *testing.T) {
	// Property: rendering an AST and reparsing yields an AST with the
	// same rendering (parse∘print is idempotent).
	exprs := []string{
		"((v > 40) && (t < 3))",
		"(0.5 * ube(l, 0, 2))",
		"iff((v > 100), (v - 100), v)",
		"((gap(t) > 0.15) || (v == 0))",
	}
	for _, src := range exprs {
		n1 := MustParse(src)
		n2 := MustParse(n1.String())
		if n1.String() != n2.String() {
			t.Errorf("round trip: %q -> %q -> %q", src, n1.String(), n2.String())
		}
	}
}

func TestExtractBitsProperty(t *testing.T) {
	// Property: for any byte payload, ubits over a whole aligned byte
	// equals that byte.
	f := func(data []byte, idx uint8) bool {
		if len(data) == 0 {
			return true
		}
		i := int(idx) % len(data)
		v := extractBits(relation.Bytes(data), i*8, 8, false)
		return v.AsInt() == int64(data[i])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUbeUleAgreeOnSingleByteProperty(t *testing.T) {
	f := func(data []byte, idx uint8) bool {
		if len(data) == 0 {
			return true
		}
		i := int(idx) % len(data)
		a := extractBytes(relation.Bytes(data), i, 1, false)
		b := extractBytes(relation.Bytes(data), i, 1, true)
		return a.AsInt() == b.AsInt()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLookupFunction(t *testing.T) {
	r := row(0, 1, "", nil, 2)
	if got := evalOn(t, "lookup(n, '0=off;1=parklight on;2=headlight on')", r); got.AsString() != "headlight on" {
		t.Errorf("lookup = %q", got)
	}
	if got := evalOn(t, "lookup(7, '0=off;1=on')", r); got.AsString() != "raw(7)" {
		t.Errorf("missing entry = %q", got)
	}
	if got := evalOn(t, "lookup(null, '0=off')", r); !got.IsNull() {
		t.Errorf("lookup(null) = %v", got)
	}
}

func TestSliceFunction(t *testing.T) {
	r := row(0, 0, "", []byte{1, 2, 3, 4}, 0)
	got := evalOn(t, "slice(l, 1, 2)", r)
	if got.K != relation.KindBytes || len(got.B) != 2 || got.B[0] != 2 || got.B[1] != 3 {
		t.Errorf("slice = %#v", got)
	}
	// Chained u1/u2: extract relevant bytes, then interpret them.
	if got := evalOn(t, "ube(slice(l, 1, 2), 0, 2)", r); got.AsInt() != 0x0203 {
		t.Errorf("chained slice/ube = %v", got)
	}
	for _, src := range []string{"slice(l, 3, 2)", "slice(l, -1, 2)", "slice(n, 0, 1)"} {
		if got := evalOn(t, src, r); !got.IsNull() {
			t.Errorf("%q = %v, want null", src, got)
		}
	}
}

func TestLittleEndianBitAccessors(t *testing.T) {
	// payload 0x12 0x34: DBC-numbered bits — byte0 LSB is bit 0.
	r := row(0, 0, "", []byte{0x12, 0x34}, 0)
	cases := []struct {
		src  string
		want int64
	}{
		{"ulbits(l, 0, 8)", 0x12},
		{"ulbits(l, 8, 8)", 0x34},
		{"ulbits(l, 0, 16)", 0x3412}, // little endian across bytes
		{"ulbits(l, 4, 8)", 0x41},    // high nibble of 0x12, low nibble of 0x34
		{"ulbits(l, 1, 3)", 0x1},     // bits 1..3 of 0x12 (0b0010010 -> 001)
		{"slbits(l, 4, 8)", 0x41},
		{"slbits(l, 8, 8)", 0x34},
	}
	for _, c := range cases {
		if got := evalOn(t, c.src, r); got.AsInt() != c.want {
			t.Errorf("%q = %v, want %#x", c.src, got, c.want)
		}
	}
	// Sign extension: 0xFF as signed 8-bit is -1.
	r2 := row(0, 0, "", []byte{0xFF}, 0)
	if got := evalOn(t, "slbits(l, 0, 8)", r2); got.AsInt() != -1 {
		t.Errorf("slbits sign extension = %v", got)
	}
	// Bounds.
	for _, src := range []string{"ulbits(l, 9, 8)", "ulbits(l, -1, 4)", "ulbits(l, 0, 65)"} {
		if got := evalOn(t, src, r2); !got.IsNull() {
			t.Errorf("%q = %v, want null", src, got)
		}
	}
}
