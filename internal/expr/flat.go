package expr

import (
	"fmt"
	"sort"
	"strings"

	"ivnt/internal/relation"
)

// This file flattens a compiled Program's AST into a postorder
// instruction slice evaluated by a small stack machine. The point is
// batch execution cost: the tree walker pays a recursive call and an
// Env interface dispatch per node per row, while the flat machine runs
// a single loop over a []Ins with a preallocated value stack — no
// per-row allocation, no virtual dispatch, and a Machine is reusable
// across every row of a batch. Semantics are shared with the tree
// walker through semantics.go, and the differential harness checks the
// two paths bit-for-bit.

// OpCode is a flat-program instruction opcode.
type OpCode uint8

const (
	// OpPushLit pushes Lits[A].
	OpPushLit OpCode = iota
	// OpPushCol pushes column A of the cursor row (null when the row
	// is short, mirroring RowEnv.Col).
	OpPushCol
	// OpNeg replaces the top of stack with its arithmetic negation.
	OpNeg
	// OpNot replaces the top of stack with !AsBool.
	OpNot
	// OpBoolCast replaces the top of stack with Bool(AsBool) — the
	// result coercion of && and ||.
	OpBoolCast
	// OpBinary pops b then a and pushes EvalBinary(BinOp(A), a, b).
	OpBinary
	// OpJump continues execution at pc A.
	OpJump
	// OpJumpIfFalse pops the top of stack and jumps to pc A when it is
	// falsy.
	OpJumpIfFalse
	// OpJumpIfTrue pops the top of stack and jumps to pc A when it is
	// truthy.
	OpJumpIfTrue
	// OpJumpIfNotNull jumps to pc A keeping the top of stack when it
	// is non-null, else pops it and falls through (coalesce).
	OpJumpIfNotNull
	// OpCall pops B arguments and pushes CallBuiltin(Builtin(A), args).
	OpCall
	// OpLag pushes column A of the row B positions before the cursor,
	// null at the sequence head (lag with a constant offset).
	OpLag
	// OpLagDyn pops the offset, then behaves like OpLag on column A.
	OpLagDyn
	// OpGapDelta pushes the float difference between column A at the
	// cursor and one row earlier, null at the head or on null cells.
	OpGapDelta
)

var opNames = [...]string{
	OpPushLit: "pushlit", OpPushCol: "pushcol", OpNeg: "neg", OpNot: "not",
	OpBoolCast: "boolcast", OpBinary: "binary", OpJump: "jump",
	OpJumpIfFalse: "jumpfalse", OpJumpIfTrue: "jumptrue",
	OpJumpIfNotNull: "jumpnotnull", OpCall: "call", OpLag: "lag",
	OpLagDyn: "lagdyn", OpGapDelta: "gapdelta",
}

func (op OpCode) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// Ins is one flat instruction. A and B are opcode-specific operands:
// literal index, column index, jump target, builtin code, arg count.
type Ins struct {
	Op   OpCode
	A, B int32
}

// FlatProgram is a Program compiled to postorder bytecode. Code never
// leaves more than MaxStack values on the machine stack, so a Machine
// can preallocate exactly once per program shape.
type FlatProgram struct {
	Source   string
	Code     []Ins
	Lits     []relation.Value
	MaxStack int
	Window   bool
}

// Flatten compiles the program to bytecode, once; subsequent calls
// return the cached FlatProgram. Safe for concurrent use.
func (p *Program) Flatten() *FlatProgram {
	p.flatOnce.Do(func() {
		f := &flattener{prog: p}
		f.emit(p.root)
		p.flat = &FlatProgram{
			Source:   p.Source,
			Code:     f.code,
			Lits:     f.lits,
			MaxStack: f.max,
			Window:   p.window,
		}
	})
	return p.flat
}

// RemapColumns returns a copy of the program with every column operand
// c rewritten to m(c). The engine uses this to point fused pipeline
// steps at scratch vectors produced by earlier steps instead of at
// materialized rows.
func (fp *FlatProgram) RemapColumns(m func(int) int) *FlatProgram {
	out := *fp
	out.Code = make([]Ins, len(fp.Code))
	copy(out.Code, fp.Code)
	for i := range out.Code {
		switch out.Code[i].Op {
		case OpPushCol, OpLag, OpLagDyn, OpGapDelta:
			out.Code[i].A = int32(m(int(out.Code[i].A)))
		}
	}
	return &out
}

// Columns returns the distinct column operands the program reads, in
// ascending order. The engine uses it to decide whether two rows are
// indistinguishable to a filter (run skipping over RLE-shaped data).
func (fp *FlatProgram) Columns() []int {
	seen := map[int]bool{}
	for _, ins := range fp.Code {
		switch ins.Op {
		case OpPushCol, OpLag, OpLagDyn, OpGapDelta:
			seen[int(ins.A)] = true
		}
	}
	cols := make([]int, 0, len(seen))
	for c := range seen {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	return cols
}

// Disasm renders the bytecode for debugging and tests.
func (fp *FlatProgram) Disasm() string {
	var b strings.Builder
	for pc, ins := range fp.Code {
		fmt.Fprintf(&b, "%3d %-12s %d %d\n", pc, ins.Op, ins.A, ins.B)
	}
	return b.String()
}

// flattener emits postorder bytecode, tracking stack depth as it goes
// so MaxStack is exact.
type flattener struct {
	prog     *Program
	code     []Ins
	lits     []relation.Value
	cur, max int
}

func (f *flattener) op(op OpCode, a, b int32) int {
	f.code = append(f.code, Ins{Op: op, A: a, B: b})
	return len(f.code) - 1
}

func (f *flattener) push(n int) {
	f.cur += n
	if f.cur > f.max {
		f.max = f.cur
	}
}

func (f *flattener) pop(n int) { f.cur -= n }

// patch points the jump at pc to the current end of code.
func (f *flattener) patch(pc int) { f.code[pc].A = int32(len(f.code)) }

func (f *flattener) lit(v relation.Value) int32 {
	f.lits = append(f.lits, v)
	return int32(len(f.lits) - 1)
}

// emit appends code that evaluates n, leaving exactly one value on the
// stack.
func (f *flattener) emit(n Node) {
	switch x := n.(type) {
	case *Lit:
		v := x.Val
		var rv relation.Value
		switch {
		case v.isNull:
			rv = relation.Null()
		case v.isBool:
			rv = relation.Bool(v.b)
		case v.isInt:
			rv = relation.Int(v.i)
		case v.isFloat:
			rv = relation.Float(v.f)
		default:
			rv = relation.Str(v.s)
		}
		f.op(OpPushLit, f.lit(rv), 0)
		f.push(1)
	case *Ident:
		f.op(OpPushCol, int32(f.prog.cols[x.Name]), 0)
		f.push(1)
	case *Unary:
		switch x.Op {
		case "-":
			f.emit(x.X)
			f.op(OpNeg, 0, 0)
		case "!":
			f.emit(x.X)
			f.op(OpNot, 0, 0)
		default:
			// Unknown unary evaluates to null; expressions are
			// side-effect free, so the operand need not run.
			f.op(OpPushLit, f.lit(relation.Null()), 0)
			f.push(1)
		}
	case *Binary:
		f.emitBinary(x)
	case *Cond:
		f.emitCond(x.C, x.A, x.B)
	case *Call:
		f.emitCall(x)
	default:
		f.op(OpPushLit, f.lit(relation.Null()), 0)
		f.push(1)
	}
}

func (f *flattener) emitBinary(x *Binary) {
	switch x.Op {
	case "&&":
		// L falsy → false without evaluating R.
		f.emit(x.L)
		jf := f.op(OpJumpIfFalse, 0, 0)
		f.pop(1)
		f.emit(x.R)
		f.op(OpBoolCast, 0, 0)
		jend := f.op(OpJump, 0, 0)
		f.pop(1)
		f.patch(jf)
		f.op(OpPushLit, f.lit(relation.Bool(false)), 0)
		f.push(1)
		f.patch(jend)
		return
	case "||":
		f.emit(x.L)
		jt := f.op(OpJumpIfTrue, 0, 0)
		f.pop(1)
		f.emit(x.R)
		f.op(OpBoolCast, 0, 0)
		jend := f.op(OpJump, 0, 0)
		f.pop(1)
		f.patch(jt)
		f.op(OpPushLit, f.lit(relation.Bool(true)), 0)
		f.push(1)
		f.patch(jend)
		return
	}
	op, ok := binOpByName[x.Op]
	if !ok {
		// Unknown operator evaluates to null; expressions are
		// side-effect free, so the operands need not run.
		f.op(OpPushLit, f.lit(relation.Null()), 0)
		f.push(1)
		return
	}
	f.emit(x.L)
	f.emit(x.R)
	f.op(OpBinary, int32(op), 0)
	f.pop(1)
}

// emitCond lowers c ? a : b (and iff(c, a, b)).
func (f *flattener) emitCond(c, a, b Node) {
	f.emit(c)
	jf := f.op(OpJumpIfFalse, 0, 0)
	f.pop(1)
	depth := f.cur
	f.emit(a)
	jend := f.op(OpJump, 0, 0)
	f.patch(jf)
	f.cur = depth
	f.emit(b)
	f.patch(jend)
}

func (f *flattener) emitCall(x *Call) {
	switch x.Fn {
	case "iff":
		f.emitCond(x.Args[0], x.Args[1], x.Args[2])
		return
	case "coalesce":
		var jumps []int
		for i, a := range x.Args {
			f.emit(a)
			if i < len(x.Args)-1 {
				jumps = append(jumps, f.op(OpJumpIfNotNull, 0, 0))
				f.pop(1)
			}
		}
		for _, j := range jumps {
			f.patch(j)
		}
		return
	case "lag":
		col := int32(f.prog.cols[x.Args[0].(*Ident).Name])
		if len(x.Args) == 1 {
			f.op(OpLag, col, 1)
			f.push(1)
			return
		}
		if l, ok := x.Args[1].(*Lit); ok && l.Val.isInt {
			f.op(OpLag, col, int32(l.Val.i))
			f.push(1)
			return
		}
		f.emit(x.Args[1])
		f.op(OpLagDyn, col, 0)
		return
	case "gap", "delta":
		f.op(OpGapDelta, int32(f.prog.cols[x.Args[0].(*Ident).Name]), 0)
		f.push(1)
		return
	}
	b, ok := builtinByName[x.Fn]
	if !ok {
		f.op(OpPushLit, f.lit(relation.Null()), 0)
		f.push(1)
		return
	}
	for _, a := range x.Args {
		f.emit(a)
	}
	f.op(OpCall, int32(b), int32(len(x.Args)))
	f.pop(len(x.Args) - 1)
}

// Machine is a reusable evaluation scratchpad for flat programs. It is
// not safe for concurrent use; pool one per worker.
type Machine struct {
	stack []relation.Value
}

// EvalAt evaluates fp with the cursor on rows[idx]; lag walks backwards
// through rows, exactly like RowEnv.
func (m *Machine) EvalAt(fp *FlatProgram, rows []relation.Row, idx int) relation.Value {
	return m.eval(fp, rows, idx, int(^uint32(0)>>1), nil, 0)
}

// EvalColsAt evaluates fp with a split column space: column operands
// below split read rows[idx] as usual, operands at or above split read
// extra[col-split][idx-base]. The engine's fused kernels use this to
// point remapped programs at scratch vectors holding not-yet
// materialized computed columns. Window opcodes only ever reference
// row columns (fusion excludes window programs), and evaluate to null
// on a scratch operand.
func (m *Machine) EvalColsAt(fp *FlatProgram, rows []relation.Row, idx, split int, extra [][]relation.Value, base int) relation.Value {
	return m.eval(fp, rows, idx, split, extra, base)
}

func (m *Machine) eval(fp *FlatProgram, rows []relation.Row, idx, split int, extra [][]relation.Value, base int) relation.Value {
	if cap(m.stack) < fp.MaxStack {
		m.stack = make([]relation.Value, fp.MaxStack)
	}
	s := m.stack[:cap(m.stack)]
	sp := 0
	code := fp.Code
	row := rows[idx]
	for pc := 0; pc < len(code); pc++ {
		ins := code[pc]
		switch ins.Op {
		case OpPushLit:
			s[sp] = fp.Lits[ins.A]
			sp++
		case OpPushCol:
			c := int(ins.A)
			switch {
			case c >= split:
				s[sp] = extra[c-split][idx-base]
			case c >= 0 && c < len(row):
				s[sp] = row[c]
			default:
				s[sp] = relation.Null()
			}
			sp++
		case OpNeg:
			s[sp-1] = EvalNeg(s[sp-1])
		case OpNot:
			s[sp-1] = relation.Bool(!s[sp-1].AsBool())
		case OpBoolCast:
			s[sp-1] = relation.Bool(s[sp-1].AsBool())
		case OpBinary:
			sp--
			s[sp-1] = EvalBinary(BinOp(ins.A), s[sp-1], s[sp])
		case OpJump:
			pc = int(ins.A) - 1
		case OpJumpIfFalse:
			sp--
			if !s[sp].AsBool() {
				pc = int(ins.A) - 1
			}
		case OpJumpIfTrue:
			sp--
			if s[sp].AsBool() {
				pc = int(ins.A) - 1
			}
		case OpJumpIfNotNull:
			if !s[sp-1].IsNull() {
				pc = int(ins.A) - 1
			} else {
				sp--
			}
		case OpCall:
			argc := int(ins.B)
			v := CallBuiltin(Builtin(ins.A), s[sp-argc:sp])
			sp -= argc
			s[sp] = v
			sp++
		case OpLag:
			s[sp] = lagValue(rows, idx, int(ins.A), int(ins.B))
			sp++
		case OpLagDyn:
			n := int(s[sp-1].AsInt())
			s[sp-1] = lagValue(rows, idx, int(ins.A), n)
		case OpGapDelta:
			col := int(ins.A)
			cur := relation.Null()
			if col >= 0 && col < len(row) {
				cur = row[col]
			}
			prev := lagValue(rows, idx, col, 1)
			if cur.IsNull() || prev.IsNull() {
				s[sp] = relation.Null()
			} else {
				s[sp] = relation.Float(cur.AsFloat() - prev.AsFloat())
			}
			sp++
		}
	}
	return s[0]
}

// EvalBoolAt evaluates and coerces to a boolean (null → false).
func (m *Machine) EvalBoolAt(fp *FlatProgram, rows []relation.Row, idx int) bool {
	return m.EvalAt(fp, rows, idx).AsBool()
}

// lagValue mirrors RowEnv.Lag's miss semantics collapsed through
// evalWindow: any miss — non-positive offset, before the head, short
// row — is null.
func lagValue(rows []relation.Row, idx, col, n int) relation.Value {
	j := idx - n
	if n <= 0 || j < 0 {
		return relation.Null()
	}
	r := rows[j]
	if col < 0 || col >= len(r) {
		return relation.Null()
	}
	return r[col]
}
