package expr

// Stream exposes the package's lexer and Pratt parser incrementally so
// grammars that embed the expression language (internal/query's SQL-ish
// frontend) can interleave their own keywords and punctuation with
// full expression parses, without duplicating a tokenizer.
//
// A Stream holds one lookahead token. Cur inspects it, Advance consumes
// it, and ParseExpr runs the expression parser starting at the current
// token, leaving the stream positioned on the first token after the
// expression (an embedding grammar's keyword or separator naturally
// terminates an expression because keywords are plain identifiers with
// no binding power in operator position).

// TokKind classifies a Stream token.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokNumber
	TokString
	TokIdent
	TokOp
	TokInvalid
)

// Tok is the exported view of one lexer token. Pos is the byte offset
// of the token's first byte in the source (for TokEOF, len(src)).
type Tok struct {
	Kind TokKind
	Text string
	Pos  int
}

// String renders the token the way parse errors do ("end of
// expression", quoted text, ...).
func (t Tok) String() string {
	return token{kind: tokenKind(t.Kind), text: t.Text, pos: t.Pos}.String()
}

// Stream scans src token at a time.
type Stream struct{ p parser }

// NewStream returns a Stream over src with the first token already
// scanned. Unlike Parse, no rule-LHS stripping is applied: src is
// consumed verbatim so token positions are offsets into src itself.
func NewStream(src string) *Stream {
	s := &Stream{p: parser{lex: lexer{src: src}}}
	s.p.advance()
	return s
}

// Src returns the source text the stream scans.
func (s *Stream) Src() string { return s.p.lex.src }

// Cur returns the current (unconsumed) token.
func (s *Stream) Cur() Tok {
	return Tok{Kind: TokKind(s.p.tok.kind), Text: s.p.tok.text, Pos: s.p.tok.pos}
}

// Advance consumes the current token.
func (s *Stream) Advance() { s.p.advance() }

// ParseExpr parses one expression starting at the current token and
// returns its AST together with the byte range [start, end) covering it
// in Src (end is the offset of the token after the expression, so the
// slice may carry trailing whitespace; callers wanting the exact
// source text should TrimSpace it). On return the current token is the
// first token after the expression.
func (s *Stream) ParseExpr() (n Node, start, end int, err error) {
	start = s.p.tok.pos
	n, err = s.p.parseExpr(0)
	if err != nil {
		return nil, 0, 0, err
	}
	return n, start, s.p.tok.pos, nil
}

// ErrAt builds an "expr: ... at line L, col C" error for the byte
// offset pos in the stream's source, matching the parser's own error
// format so embedding grammars report positions consistently.
func (s *Stream) ErrAt(pos int, format string, args ...any) error {
	return s.p.errAt(pos, format, args...)
}
