package serve

import (
	"context"
	"reflect"
	"testing"
	"time"

	"ivnt/internal/segstore"
)

// TestCompactionInvalidatesResultCache is the regression pinning the
// cache-coherence contract: compaction bumps the store generation,
// generations are part of every result-cache key, so a compacted store
// can never serve a stale cached response — and the fresh execution
// over the rewritten segments returns identical rows.
func TestCompactionInvalidatesResultCache(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)
	s := newTestServer(t, map[string]*TenantConfig{
		"acme": {Relations: map[string]string{"trace": dir}},
	})
	const sql = "select ts, val, sid from trace where val >= 0 order by ts"

	first, err := s.Query(context.Background(), "acme", sql, false)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cache != "miss" {
		t.Fatalf("first query cache = %q, want miss", first.Cache)
	}
	cached, err := s.Query(context.Background(), "acme", sql, false)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Cache != "hit" {
		t.Fatalf("repeat query cache = %q, want hit", cached.Cache)
	}

	st, err := s.Catalog.Store("acme", "trace")
	if err != nil {
		t.Fatal(err)
	}
	genBefore := st.Generation()
	groups, err := s.CompactStores(segstore.CompactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if groups == 0 {
		t.Fatal("compaction rewrote no groups over a 3-segment store")
	}
	if st.Generation() <= genBefore {
		t.Fatal("compaction did not bump the store generation")
	}

	after, err := s.Query(context.Background(), "acme", sql, false)
	if err != nil {
		t.Fatal(err)
	}
	if after.Cache != "miss" {
		t.Fatalf("post-compaction query cache = %q, want miss (stale key must be unreachable)", after.Cache)
	}
	if !reflect.DeepEqual(after.Rows, first.Rows) {
		t.Fatal("post-compaction rows differ from pre-compaction rows")
	}
}

// TestRunCompactorSkipsBusyTicks: the idle-time loop compacts when no
// query is in flight and holds off while one is.
func TestRunCompactorSkipsBusyTicks(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)
	s := newTestServer(t, map[string]*TenantConfig{
		"acme": {Relations: map[string]string{"trace": dir}},
	})
	// Open the store through the catalog so the compactor sees it.
	st, err := s.Catalog.Store("acme", "trace")
	if err != nil {
		t.Fatal(err)
	}

	// Simulate an in-flight query: the loop must leave the store alone.
	s.active.Add(1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.RunCompactor(ctx, time.Millisecond, segstore.CompactOptions{})
	}()
	time.Sleep(20 * time.Millisecond)
	if n := st.NumSegments(); n != 3 {
		t.Fatalf("compactor ran with a query in flight (segments = %d)", n)
	}

	// Idle: the next ticks compact down to one segment.
	s.active.Add(-1)
	deadline := time.Now().Add(5 * time.Second)
	for st.NumSegments() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("compactor idle pass never ran (segments = %d)", st.NumSegments())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done
}
