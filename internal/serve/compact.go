// Background compaction in the query service. Streaming ingest seals
// many small segments; every one costs a footer read and a partition
// slot per query. The compactor rewrites them into few large segments
// during idle time, and correctness needs no coordination with the
// result cache: segstore.Compact bumps the store's manifest generation,
// which is part of every result-cache key, so cached responses over the
// pre-compaction layout simply stop being addressable. Queries in
// flight keep reading the replaced files — segstore defers their
// deletion by one full compaction cycle.
package serve

import (
	"context"
	"time"

	"ivnt/internal/segstore"
)

// InFlight reports the number of queries currently executing (admitted,
// not merely waiting). The compactor uses it to keep compaction off the
// query path.
func (s *Server) InFlight() int64 { return s.active.Load() }

// CompactStores runs one compaction pass over every store the catalog
// has opened. It returns the number of segment groups rewritten and the
// first error; later stores still run after one fails (a wedged tenant
// directory must not stall the rest).
func (s *Server) CompactStores(opts segstore.CompactOptions) (int, error) {
	var groups int
	var first error
	for _, st := range s.Catalog.Stores() {
		n, err := st.Compact(opts)
		groups += n
		if err != nil && first == nil {
			first = err
		}
	}
	return groups, first
}

// RunCompactor loops CompactStores every interval until ctx is done,
// skipping any tick that would race live queries (InFlight > 0 — the
// next tick retries). Run it in its own goroutine; cmd/served wires it
// behind the -compact-interval flag. Errors are counted in
// serve_compact_errors_total and do not stop the loop.
func (s *Server) RunCompactor(ctx context.Context, interval time.Duration, opts segstore.CompactOptions) {
	if interval <= 0 {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if s.InFlight() > 0 {
			continue
		}
		if _, err := s.CompactStores(opts); err != nil {
			mCompactErrors.Inc()
		}
	}
}
