package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"ivnt/internal/relation"
	"ivnt/internal/segstore"
)

// TenantConfig describes one tenant of the query service: a concurrency
// ceiling and the relations it may query, each backed by a segment
// store directory.
type TenantConfig struct {
	// MaxConcurrency caps the tenant's in-flight queries; excess
	// requests wait (and count as admission deferrals) rather than
	// fail. 0 uses the server default.
	MaxConcurrency int `json:"max_concurrency"`
	// Relations maps relation name -> segstore directory.
	Relations map[string]string `json:"relations"`
}

// Config is the on-disk catalog format of cmd/served (-catalog flag):
//
//	{"tenants": {"acme": {"max_concurrency": 4,
//	                      "relations": {"trace": "/data/acme/trace"}}}}
type Config struct {
	Tenants map[string]*TenantConfig `json:"tenants"`
}

// LoadConfig reads and validates a catalog config file.
func LoadConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("serve: catalog %s: %w", path, err)
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("serve: catalog %s: no tenants", path)
	}
	for name, tc := range cfg.Tenants {
		if tc == nil || len(tc.Relations) == 0 {
			return nil, fmt.Errorf("serve: catalog %s: tenant %q has no relations", path, name)
		}
		if tc.MaxConcurrency < 0 {
			return nil, fmt.Errorf("serve: catalog %s: tenant %q has negative max_concurrency", path, name)
		}
	}
	return &cfg, nil
}

// Catalog resolves (tenant, relation) pairs to open segment stores.
// Stores are opened lazily (adopting the manifest schema) and shared:
// two tenants pointing at the same directory read — and observe the
// generation of — the same *segstore.Store. All methods are safe for
// concurrent use.
type Catalog struct {
	cfg  *Config
	opts segstore.Options

	mu     sync.Mutex
	stores map[string]*segstore.Store // keyed by directory
}

// NewCatalog wraps a validated config. opts applies to lazily opened
// stores (compression is a write-side option; reads auto-detect).
func NewCatalog(cfg *Config, opts segstore.Options) *Catalog {
	return &Catalog{cfg: cfg, opts: opts, stores: map[string]*segstore.Store{}}
}

// Tenant returns the tenant's config, or false if unknown.
func (c *Catalog) Tenant(name string) (*TenantConfig, bool) {
	tc, ok := c.cfg.Tenants[name]
	return tc, ok
}

// Relations lists the tenant's relation names, sorted.
func (c *Catalog) Relations(tenant string) ([]string, error) {
	tc, ok := c.Tenant(tenant)
	if !ok {
		return nil, fmt.Errorf("serve: unknown tenant %q", tenant)
	}
	names := make([]string, 0, len(tc.Relations))
	for name := range tc.Relations {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Store opens (once) and returns the segment store backing the
// tenant's relation.
func (c *Catalog) Store(tenant, rel string) (*segstore.Store, error) {
	tc, ok := c.Tenant(tenant)
	if !ok {
		return nil, fmt.Errorf("serve: unknown tenant %q", tenant)
	}
	dir, ok := tc.Relations[rel]
	if !ok {
		return nil, fmt.Errorf("serve: tenant %q has no relation %q", tenant, rel)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.stores[dir]; ok {
		return st, nil
	}
	st, err := segstore.Open(dir, relation.Schema{}, c.opts)
	if err != nil {
		return nil, fmt.Errorf("serve: open %s/%s: %w", tenant, rel, err)
	}
	c.stores[dir] = st
	return st, nil
}

// Stores snapshots every store opened so far (each shared directory
// once), in stable directory order. The background compactor walks
// this list; stores no tenant has queried yet are untouched.
func (c *Catalog) Stores() []*segstore.Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	dirs := make([]string, 0, len(c.stores))
	for dir := range c.stores {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	out := make([]*segstore.Store, len(dirs))
	for i, dir := range dirs {
		out[i] = c.stores[dir]
	}
	return out
}
