package serve

import (
	"fmt"

	"ivnt/internal/telemetry"
)

var (
	mQueries = telemetry.Default().CounterVec("serve_queries_total",
		"Queries handled, by terminal status (ok, parse_error, compile_error, exec_error, rejected).", "status")
	mResultHits = telemetry.Default().Counter("serve_result_cache_hits_total",
		"Queries answered from the result cache without executing.")
	mResultMisses = telemetry.Default().Counter("serve_result_cache_misses_total",
		"Queries that missed (or bypassed) the result cache and executed.")
	mPlanHits = telemetry.Default().Counter("serve_plan_cache_hits_total",
		"Queries whose compiled plan was reused from the plan cache.")
	mPlanMisses = telemetry.Default().Counter("serve_plan_cache_misses_total",
		"Queries that parsed and compiled a fresh plan.")
	mDeferrals = telemetry.Default().Counter("serve_admission_deferrals_total",
		"Admission waits: queries held for a tenant concurrency slot or paused under memory pressure.")
	mActive = telemetry.Default().Gauge("serve_active_queries",
		"Queries currently admitted and executing.")
	mQuerySeconds = telemetry.Default().HistogramVec("serve_query_seconds",
		"Wall time per query by terminal status.", telemetry.DurationBuckets, "status")
	mIngestedSegments = telemetry.Default().Counter("serve_ingested_segments_total",
		"Segments sealed through the /ingest endpoint.")
	mCompactErrors = telemetry.Default().Counter("serve_compact_errors_total",
		"Background compaction passes that reported an error.")
)

var metricNames = map[string]string{
	"serve_queries_total":             telemetry.TypeCounter,
	"serve_result_cache_hits_total":   telemetry.TypeCounter,
	"serve_result_cache_misses_total": telemetry.TypeCounter,
	"serve_plan_cache_hits_total":     telemetry.TypeCounter,
	"serve_plan_cache_misses_total":   telemetry.TypeCounter,
	"serve_admission_deferrals_total": telemetry.TypeCounter,
	"serve_active_queries":            telemetry.TypeGauge,
	"serve_query_seconds":             telemetry.TypeHistogram,
	"serve_ingested_segments_total":   telemetry.TypeCounter,
	"serve_compact_errors_total":      telemetry.TypeCounter,
}

// VerifyMetrics checks that every serve_* metric family this package
// documents is registered on the default registry with the documented
// type. cmd/vetmetrics runs it in CI.
func VerifyMetrics() error {
	found := map[string]bool{}
	for _, m := range telemetry.Default().Snapshot() {
		typ, ok := metricNames[m.Name]
		if !ok {
			continue
		}
		if m.Type != typ {
			return fmt.Errorf("serve metric family %q registered as %s, want %s", m.Name, m.Type, typ)
		}
		found[m.Name] = true
	}
	for name := range metricNames {
		if !found[name] {
			return fmt.Errorf("serve metric family %q not registered", name)
		}
	}
	return nil
}
