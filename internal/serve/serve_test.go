package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"ivnt/internal/engine"
	"ivnt/internal/relation"
	"ivnt/internal/segstore"
	"ivnt/internal/telemetry"
)

func traceSchema() relation.Schema {
	return relation.NewSchema(
		relation.Column{Name: "ts", Kind: relation.KindInt},
		relation.Column{Name: "val", Kind: relation.KindFloat},
		relation.Column{Name: "sid", Kind: relation.KindString},
	)
}

// seedStore creates a trace store with three segments in disjoint ts
// bands (0-9, 100-109, 200-209) so range predicates provably prune.
func seedStore(t *testing.T, dir string) *segstore.Store {
	t.Helper()
	st, err := segstore.Open(dir, traceSchema(), segstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for band := 0; band < 3; band++ {
		rows := make([]relation.Row, 10)
		for i := range rows {
			ts := int64(band*100 + i)
			rows[i] = relation.Row{
				relation.Int(ts),
				relation.Float(float64(ts) / 2),
				relation.Str(fmt.Sprintf("s%d", band)),
			}
		}
		if err := st.AppendSegment(rows); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func newTestServer(t *testing.T, tenants map[string]*TenantConfig) *Server {
	t.Helper()
	return &Server{
		Exec:    engine.NewLocal(2),
		Catalog: NewCatalog(&Config{Tenants: tenants}, segstore.Options{}),
	}
}

func counter(name string) int64 { return telemetry.Default().CounterValue(name) }

type httpClient struct {
	t   *testing.T
	url string
}

func (c httpClient) post(path string, body any) (int, []byte) {
	c.t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.Post(c.url+path, "application/json", bytes.NewReader(data))
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		c.t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func (c httpClient) query(tenant, sql string) *Response {
	c.t.Helper()
	code, body := c.post("/query", queryRequest{Tenant: tenant, SQL: sql})
	if code != http.StatusOK {
		c.t.Fatalf("query %q: HTTP %d: %s", sql, code, body)
	}
	var r Response
	if err := json.Unmarshal(body, &r); err != nil {
		c.t.Fatal(err)
	}
	return &r
}

// The served path must scan through the same zone-map pruning as a
// hand-built pipeline and produce cell-for-cell identical output.
func TestServedQueryOverStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "trace")
	st := seedStore(t, dir)
	s := newTestServer(t, map[string]*TenantConfig{
		"acme": {Relations: map[string]string{"trace": dir}},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := httpClient{t, ts.URL}

	const sql = "SELECT ts, val FROM trace WHERE ts >= 200 ORDER BY ts"
	pruned0 := counter("segstore_segments_pruned_total")
	resp := c.query("acme", sql)
	if d := counter("segstore_segments_pruned_total") - pruned0; d < 2 {
		t.Errorf("pruned %d segments, want >= 2 (zone maps not consulted?)", d)
	}
	if resp.Cache != "miss" || resp.RowCount != 10 {
		t.Fatalf("first response: cache=%q rows=%d", resp.Cache, resp.RowCount)
	}

	// Hand-build the same pipeline straight on the store: filter +
	// project via ScanStage, then the governed sort. The served rows
	// must render identically, cell for cell.
	rel, _, err := engine.ScanStage(context.Background(), engine.NewLocal(2), st,
		[]engine.OpDesc{engine.Filter("ts >= 200"), engine.Project("ts", "val")})
	if err != nil {
		t.Fatal(err)
	}
	rel, err = engine.SortRelation(rel, "ts")
	if err != nil {
		t.Fatal(err)
	}
	want := RenderRows(rel)
	// The response rows round-tripped through JSON; normalize the same
	// way before comparing.
	var got [][]any
	raw, _ := json.Marshal(resp.Rows)
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	wantNorm := make([][]any, len(want))
	raw, _ = json.Marshal(want)
	if err := json.Unmarshal(raw, &wantNorm); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, wantNorm) {
		t.Fatalf("served rows differ from hand-built pipeline:\n got %v\nwant %v", got, wantNorm)
	}

	// Same statement again: answered from the result cache.
	hits0 := counter("serve_result_cache_hits_total")
	resp = c.query("acme", sql)
	if resp.Cache != "hit" {
		t.Fatalf("second response cache = %q, want hit", resp.Cache)
	}
	if d := counter("serve_result_cache_hits_total") - hits0; d != 1 {
		t.Fatalf("result cache hits moved by %d, want 1", d)
	}

	// Sealing a segment bumps the generation, so the next query misses
	// the cache and sees the new rows.
	gen0 := st.Generation()
	code, body := c.post("/ingest", ingestRequest{
		Tenant: "acme", Relation: "trace",
		Rows: [][]any{{300, 150.0, "s3"}, {301, 150.5, "s3"}},
	})
	if code != http.StatusOK {
		t.Fatalf("ingest: HTTP %d: %s", code, body)
	}
	var ing ingestResponse
	if err := json.Unmarshal(body, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Generation != gen0+1 {
		t.Fatalf("ingest generation %d, want %d", ing.Generation, gen0+1)
	}
	resp = c.query("acme", sql)
	if resp.Cache != "miss" || resp.RowCount != 12 {
		t.Fatalf("post-ingest response: cache=%q rows=%d, want miss/12", resp.Cache, resp.RowCount)
	}

	// nocache bypasses the cache read but still executes correctly.
	code, body = c.post("/query?nocache=1", queryRequest{Tenant: "acme", SQL: sql})
	if code != http.StatusOK {
		t.Fatalf("nocache query: HTTP %d: %s", code, body)
	}
	var r2 Response
	if err := json.Unmarshal(body, &r2); err != nil {
		t.Fatal(err)
	}
	if r2.Cache != "bypass" || r2.RowCount != 12 {
		t.Fatalf("nocache response: cache=%q rows=%d", r2.Cache, r2.RowCount)
	}

	// Plan cache: all of the above reused one compiled plan.
	if s.plans.len() != 1 {
		t.Fatalf("plan cache holds %d entries, want 1", s.plans.len())
	}

	// A grouped query exercises the aggregate path end to end.
	agg := c.query("acme", "SELECT sid, count(*) AS n FROM trace GROUP BY sid ORDER BY sid")
	if agg.RowCount != 4 || agg.Plan == "" {
		t.Fatalf("aggregate response: %+v", agg)
	}
}

func TestServeCatalogEndpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "trace")
	seedStore(t, dir)
	s := newTestServer(t, map[string]*TenantConfig{
		"acme": {Relations: map[string]string{"trace": dir}},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/catalog?tenant=acme")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rels []catalogRelation
	if err := json.NewDecoder(resp.Body).Decode(&rels); err != nil {
		t.Fatal(err)
	}
	if len(rels) != 1 || rels[0].Name != "trace" || rels[0].Segments != 3 || rels[0].Generation != 3 {
		t.Fatalf("catalog = %+v", rels)
	}

	resp, err = http.Get(ts.URL + "/catalog?tenant=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant: HTTP %d", resp.StatusCode)
	}
}

func TestServeErrors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "trace")
	seedStore(t, dir)
	s := newTestServer(t, map[string]*TenantConfig{
		"acme": {Relations: map[string]string{"trace": dir}},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := httpClient{t, ts.URL}

	cases := []struct {
		tenant, sql string
		code        int
	}{
		{"ghost", "SELECT ts FROM trace", http.StatusNotFound},
		{"acme", "SELECT FROM", http.StatusBadRequest},
		{"acme", "SELECT nope FROM trace", http.StatusBadRequest},
		{"acme", "SELECT ts FROM ghostrel", http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, body := c.post("/query", queryRequest{Tenant: tc.tenant, SQL: tc.sql})
		if code != tc.code {
			t.Errorf("%s/%q: HTTP %d (want %d): %s", tc.tenant, tc.sql, code, tc.code, body)
		}
	}
}

// Tenants over their concurrency ceiling wait — deferrals count up,
// nothing fails.
func TestServeAdmissionDeferrals(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "trace")
	seedStore(t, dir)
	s := newTestServer(t, map[string]*TenantConfig{
		"acme": {MaxConcurrency: 2, Relations: map[string]string{"trace": dir}},
		"zeta": {MaxConcurrency: 2, Relations: map[string]string{"trace": dir}},
	})
	DebugQueryDelay = func(string) { time.Sleep(20 * time.Millisecond) }
	defer func() { DebugQueryDelay = nil }()

	defer0 := counter("serve_admission_deferrals_total")
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for _, tenant := range []string{"acme", "zeta"} {
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(tenant string, i int) {
				defer wg.Done()
				// Distinct LIMITs defeat the result cache so every query
				// occupies a slot.
				sql := fmt.Sprintf("SELECT ts FROM trace ORDER BY ts LIMIT %d", i+1)
				resp, err := s.Query(context.Background(), tenant, sql, false)
				if err != nil {
					errs <- err
					return
				}
				if resp.RowCount != i+1 {
					errs <- fmt.Errorf("%s limit %d: got %d rows", tenant, i+1, resp.RowCount)
				}
			}(tenant, i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if d := counter("serve_admission_deferrals_total") - defer0; d == 0 {
		t.Error("16 queries against 2-slot tenants produced no admission deferrals")
	}
}

// Shutdown drains: in-flight queries finish, new ones are rejected.
func TestServeShutdownDrain(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "trace")
	seedStore(t, dir)
	s := newTestServer(t, map[string]*TenantConfig{
		"acme": {Relations: map[string]string{"trace": dir}},
	})
	entered := make(chan struct{})
	release := make(chan struct{})
	DebugQueryDelay = func(string) {
		close(entered)
		<-release
	}
	defer func() { DebugQueryDelay = nil }()

	type out struct {
		resp *Response
		err  error
	}
	first := make(chan out, 1)
	go func() {
		r, err := s.Query(context.Background(), "acme", "SELECT ts FROM trace ORDER BY ts LIMIT 3", false)
		first <- out{r, err}
	}()
	<-entered
	DebugQueryDelay = nil // only the first query should block

	drained := make(chan bool, 1)
	go func() { drained <- s.Shutdown(10 * time.Second) }()

	// Draining servers reject new work immediately.
	deadline := time.After(5 * time.Second)
	for !s.draining.Load() {
		select {
		case <-deadline:
			t.Fatal("server never started draining")
		case <-time.After(time.Millisecond):
		}
	}
	if _, err := s.Query(context.Background(), "acme", "SELECT ts FROM trace", false); err == nil {
		t.Fatal("query accepted while draining")
	} else if he, ok := err.(*httpError); !ok || he.code != http.StatusServiceUnavailable {
		t.Fatalf("draining error = %v, want 503", err)
	}

	close(release)
	if got := <-first; got.err != nil {
		t.Fatalf("in-flight query failed during drain: %v", got.err)
	} else if got.resp.RowCount != 3 {
		t.Fatalf("in-flight query rows = %d", got.resp.RowCount)
	}
	if !<-drained {
		t.Fatal("Shutdown timed out with one blocking query released")
	}
}

func TestLoadConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.json")
	write := func(s string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(`{"tenants": {"acme": {"max_concurrency": 2, "relations": {"trace": "/data/trace"}}}}`)
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Tenants["acme"].MaxConcurrency != 2 || cfg.Tenants["acme"].Relations["trace"] != "/data/trace" {
		t.Fatalf("config = %+v", cfg.Tenants["acme"])
	}
	for _, bad := range []string{
		`{}`,
		`{"tenants": {"acme": {}}}`,
		`{"tenants": {"acme": {"max_concurrency": -1, "relations": {"t": "d"}}}}`,
		`not json`,
	} {
		write(bad)
		if _, err := LoadConfig(path); err == nil {
			t.Errorf("LoadConfig(%s): expected error", bad)
		}
	}
}

// Untyped (kind-null) columns — extract-sealed stores declare these for
// mixed-kind value columns — accept any scalar JSON cell, kind inferred.
func TestDecodeCellUntyped(t *testing.T) {
	for _, tc := range []struct {
		cell any
		want relation.Value
	}{
		{nil, relation.Null()},
		{true, relation.Bool(true)},
		{float64(42), relation.Int(42)},
		{12.5, relation.Float(12.5)},
		{"hi", relation.Str("hi")},
	} {
		got, err := decodeCell(relation.KindNull, tc.cell)
		if err != nil {
			t.Fatalf("decodeCell(null, %v): %v", tc.cell, err)
		}
		if !got.Equal(tc.want) {
			t.Errorf("decodeCell(null, %v) = %v, want %v", tc.cell, got, tc.want)
		}
	}
	if _, err := decodeCell(relation.KindNull, []any{1}); err == nil {
		t.Error("decodeCell(null, array): expected error")
	}
}

func TestLRU(t *testing.T) {
	c := newLRU(2)
	c.put("a", 1)
	c.put("b", 2)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("c", 3) // evicts b (a was touched)
	if _, ok := c.get("b"); ok {
		t.Fatal("b not evicted")
	}
	if v, ok := c.get("a"); !ok || v.(int) != 1 {
		t.Fatal("a lost")
	}
	disabled := newLRU(-1)
	disabled.put("x", 1)
	if _, ok := disabled.get("x"); ok || disabled.len() != 0 {
		t.Fatal("disabled cache stored an entry")
	}
}

func TestVerifyMetrics(t *testing.T) {
	if err := VerifyMetrics(); err != nil {
		t.Fatal(err)
	}
}
