// Package serve is the multi-tenant query service: a long-running HTTP
// daemon (cmd/served) that compiles SQL-ish statements (internal/query)
// onto engine plans and runs them over per-tenant segment stores with a
// resident executor — local workers or a persistent cluster driver
// whose pooled connections keep shipped stages warm across queries.
//
// Three mechanisms keep a shared daemon healthy under many tenants:
//
//   - Admission control. Each tenant holds a concurrency ceiling;
//     excess queries wait for a slot (counted as deferrals, never
//     failed). When the process memory governor reports pressure at or
//     above AdmissionThreshold, admission additionally pauses before
//     dispatch, shedding load instead of deepening spill.
//
//   - Plan cache. Compiled plans are cached per (tenant, statement), so
//     a repeated statement skips the parser and compiler entirely and
//     lands on the same engine op tree — whose stage fingerprints then
//     hit the engine's compiled-pipeline cache and, on a persistent
//     cluster driver, the executors' already-shipped stages.
//
//   - Result cache. Rendered responses are cached under
//     (tenant, statement, relation generations). A segment seal bumps
//     the store's manifest generation, so ingest invalidates exactly
//     the cached results that could observe the new rows — no TTLs, no
//     explicit flush.
//
// See docs/QUERY.md for the statement grammar and a worked session.
package serve

import (
	"container/list"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ivnt/internal/engine"
	"ivnt/internal/memgov"
	"ivnt/internal/query"
	"ivnt/internal/relation"
	"ivnt/internal/telemetry"
)

// DebugQueryDelay, when non-nil, runs while a query holds its admission
// slot, before execution. Tests use it to keep slots occupied and force
// deferrals.
var DebugQueryDelay func(tenant string)

// Server is the query service. Exported fields are configuration; set
// them before the first request. The zero value of each picks a
// sensible default.
type Server struct {
	// Exec runs stages: engine.NewLocal(n) in-process, or a
	// *cluster.Driver with Persistent set for a resident pool.
	Exec engine.Executor
	// Catalog resolves tenants and relations to segment stores.
	Catalog *Catalog
	// DefaultMaxConcurrency applies to tenants whose config leaves
	// MaxConcurrency 0. Default 4.
	DefaultMaxConcurrency int
	// AdmissionThreshold is the memgov pressure fraction at or above
	// which admission pauses before dispatching. Default 0.85;
	// negative disables pressure deferral.
	AdmissionThreshold float64
	// AdmissionPause is one pressure-deferral pause. Default 20ms.
	AdmissionPause time.Duration
	// AdmissionMaxPauses bounds pressure pauses per query; after that
	// the query proceeds (spilling under the memory budget beats
	// waiting forever). Default 50.
	AdmissionMaxPauses int
	// PlanCacheCap bounds cached compiled plans. Default 256;
	// negative disables the plan cache.
	PlanCacheCap int
	// ResultCacheCap bounds cached rendered responses. Default 128;
	// negative disables the result cache.
	ResultCacheCap int
	// PlanConfig tunes broadcast/shuffle selection for joins and
	// aggregations.
	PlanConfig engine.PlanConfig
	// Tracer, when non-nil, records one span per query. Tasks, when
	// non-nil, is mounted on the debug mux by Handler.
	Tracer *telemetry.Tracer
	Tasks  *telemetry.TaskTable

	initOnce sync.Once
	draining atomic.Bool
	inflight sync.WaitGroup
	active   atomic.Int64

	mu      sync.Mutex
	sems    map[string]chan struct{}
	plans   *lruCache
	results *lruCache
}

func (s *Server) init() {
	s.initOnce.Do(func() {
		if s.DefaultMaxConcurrency <= 0 {
			s.DefaultMaxConcurrency = 4
		}
		if s.AdmissionThreshold == 0 {
			s.AdmissionThreshold = 0.85
		}
		if s.AdmissionPause <= 0 {
			s.AdmissionPause = 20 * time.Millisecond
		}
		if s.AdmissionMaxPauses <= 0 {
			s.AdmissionMaxPauses = 50
		}
		if s.PlanCacheCap == 0 {
			s.PlanCacheCap = 256
		}
		if s.ResultCacheCap == 0 {
			s.ResultCacheCap = 128
		}
		s.sems = map[string]chan struct{}{}
		s.plans = newLRU(s.PlanCacheCap)
		s.results = newLRU(s.ResultCacheCap)
	})
}

// Response is the rendered result of one query, exactly what /query
// returns as JSON. Cached responses are replayed with Cache set to
// "hit"; everything else in a cached Response is shared read-only.
type Response struct {
	Columns  []ColumnJSON `json:"columns"`
	Rows     [][]any      `json:"rows"`
	RowCount int          `json:"row_count"`
	Plan     string       `json:"plan"`  // broadcast unless a join/aggregate chose shuffle
	Cache    string       `json:"cache"` // hit|miss|bypass
	Stats    StatsJSON    `json:"stats"`
}

// ColumnJSON names one output column and its kind.
type ColumnJSON struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// StatsJSON is the engine stats excerpt reported per query.
type StatsJSON struct {
	RowsIn  int     `json:"rows_in"`
	RowsOut int     `json:"rows_out"`
	Tasks   int     `json:"tasks"`
	WallMS  float64 `json:"wall_ms"`
}

// httpError carries a status code out of the query path.
type httpError struct {
	code   int
	status string // serve_queries_total label
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }

func errf(code int, status, format string, args ...any) *httpError {
	return &httpError{code: code, status: status, err: fmt.Errorf(format, args...)}
}

// Query parses, admits, executes and renders one statement for a
// tenant. nocache bypasses result-cache reads (the response still
// populates the cache), which benchmarks use to measure execution.
func (s *Server) Query(ctx context.Context, tenant, sql string, nocache bool) (*Response, error) {
	s.init()
	start := time.Now()
	resp, herr := s.query(ctx, tenant, sql, nocache)
	status := "ok"
	if herr != nil {
		status = herr.status
	}
	mQueries.With(status).Inc()
	telemetry.Since(mQuerySeconds.With(status), start)
	if herr != nil {
		return nil, herr
	}
	return resp, nil
}

func (s *Server) query(ctx context.Context, tenant, sql string, nocache bool) (*Response, *httpError) {
	if s.draining.Load() {
		return nil, errf(http.StatusServiceUnavailable, "rejected", "serve: draining, not accepting queries")
	}
	tc, ok := s.Catalog.Tenant(tenant)
	if !ok {
		return nil, errf(http.StatusNotFound, "rejected", "serve: unknown tenant %q", tenant)
	}

	sp := s.Tracer.StartSpan("serve.query",
		telemetry.A("tenant", tenant), telemetry.A("sql", sql))
	defer sp.End()

	p, herr := s.plan(tenant, sql)
	if herr != nil {
		sp.SetAttr("error", herr.Error())
		return nil, herr
	}

	// Resolve the stores (and their generations) before touching the
	// result cache: the generations ARE the cache key, so a seal that
	// lands before this point serves fresh data and one that lands
	// after is a later key.
	rels := []string{p.From}
	if p.Join != nil {
		rels = append(rels, p.Join.Rel)
	}
	key := tenant + "\x00" + sql
	for _, rel := range rels {
		st, err := s.Catalog.Store(tenant, rel)
		if err != nil {
			return nil, errf(http.StatusNotFound, "rejected", "%s", err.Error())
		}
		key += "\x00" + rel + "@" + strconv.FormatUint(st.Generation(), 10)
	}
	if !nocache {
		if v, ok := s.results.get(key); ok {
			mResultHits.Inc()
			sp.SetAttr("cache", "hit")
			r := *v.(*Response)
			r.Cache = "hit"
			return &r, nil
		}
	}
	mResultMisses.Inc()

	release, herr := s.admit(ctx, tenant, tc)
	if herr != nil {
		return nil, herr
	}
	defer release()
	mActive.Add(1)
	defer mActive.Add(-1)
	s.active.Add(1)
	defer s.active.Add(-1)
	s.inflight.Add(1)
	defer s.inflight.Done()

	if DebugQueryDelay != nil {
		DebugQueryDelay(tenant)
	}

	res, err := query.Run(ctx, s.Exec, tenantSources{s.Catalog, tenant}, p, s.PlanConfig)
	if err != nil {
		sp.SetAttr("error", err.Error())
		return nil, errf(http.StatusInternalServerError, "exec_error", "serve: %s", err.Error())
	}
	resp := render(res)
	s.results.put(key, resp)
	sp.SetAttr("rows", strconv.Itoa(resp.RowCount))
	out := *resp
	if nocache {
		out.Cache = "bypass"
	} else {
		out.Cache = "miss"
	}
	return &out, nil
}

// plan returns the cached compiled plan for (tenant, sql), compiling on
// miss. Plans key on the statement alone — not generations — because a
// store's schema is fixed for its life, so a plan never goes stale.
func (s *Server) plan(tenant, sql string) (*query.Plan, *httpError) {
	key := tenant + "\x00" + sql
	if v, ok := s.plans.get(key); ok {
		mPlanHits.Inc()
		return v.(*query.Plan), nil
	}
	q, err := query.Parse(sql)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "parse_error", "%s", err.Error())
	}
	p, err := query.Compile(q, func(rel string) (relation.Schema, error) {
		st, err := s.Catalog.Store(tenant, rel)
		if err != nil {
			return relation.Schema{}, err
		}
		return st.ScanSchema(), nil
	})
	if err != nil {
		return nil, errf(http.StatusBadRequest, "compile_error", "%s", err.Error())
	}
	mPlanMisses.Inc()
	s.plans.put(key, p)
	return p, nil
}

// admit blocks until the tenant has a free concurrency slot and memory
// pressure is acceptable. Waiting is counted (deferrals), never failed:
// a throttled tenant's queries are late, not lost.
func (s *Server) admit(ctx context.Context, tenant string, tc *TenantConfig) (func(), *httpError) {
	limit := tc.MaxConcurrency
	if limit <= 0 {
		limit = s.DefaultMaxConcurrency
	}
	s.mu.Lock()
	sem, ok := s.sems[tenant]
	if !ok || cap(sem) != limit {
		sem = make(chan struct{}, limit)
		s.sems[tenant] = sem
	}
	s.mu.Unlock()

	select {
	case sem <- struct{}{}:
	default:
		// Slot wait — a deferral, then block for the slot.
		mDeferrals.Inc()
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			return nil, errf(http.StatusServiceUnavailable, "rejected", "serve: %s", ctx.Err())
		}
	}
	release := func() { <-sem }

	gov := memgov.Default()
	if s.AdmissionThreshold > 0 && !gov.Unlimited() {
		for i := 0; i < s.AdmissionMaxPauses && gov.Pressure() >= s.AdmissionThreshold; i++ {
			mDeferrals.Inc()
			select {
			case <-time.After(s.AdmissionPause):
			case <-ctx.Done():
				release()
				return nil, errf(http.StatusServiceUnavailable, "rejected", "serve: %s", ctx.Err())
			}
		}
	}
	return release, nil
}

type tenantSources struct {
	c      *Catalog
	tenant string
}

func (t tenantSources) Source(rel string) (engine.ScanSource, error) {
	return t.c.Store(t.tenant, rel)
}

// render builds the cached Response for a query result. Cache is left
// empty; responders stamp hit/miss/bypass per reply.
func render(res *query.Result) *Response {
	sch := res.Rel.Schema
	cols := make([]ColumnJSON, sch.Len())
	for i, c := range sch.Cols {
		cols[i] = ColumnJSON{Name: c.Name, Kind: c.Kind.String()}
	}
	rows := RenderRows(res.Rel)
	return &Response{
		Columns:  cols,
		Rows:     rows,
		RowCount: len(rows),
		Plan:     res.PlanKind.String(),
		Stats: StatsJSON{
			RowsIn:  res.Stats.RowsIn,
			RowsOut: res.Stats.RowsOut,
			Tasks:   res.Stats.Tasks,
			WallMS:  float64(res.Stats.Wall) / float64(time.Millisecond),
		},
	}
}

// RenderRows converts a relation to the JSON cell encoding /query uses:
// null → null, bool → bool, int → number, float → number (NaN and the
// infinities as the strings "NaN", "+Inf", "-Inf"), string → string,
// bytes → base64 string. Exported so tests and benchmarks can compare a
// served response against a hand-built pipeline cell for cell.
func RenderRows(rel *relation.Relation) [][]any {
	rs := rel.Rows()
	out := make([][]any, len(rs))
	for i, r := range rs {
		cells := make([]any, len(r))
		for j, v := range r {
			cells[j] = renderCell(v)
		}
		out[i] = cells
	}
	return out
}

func renderCell(v relation.Value) any {
	switch v.K {
	case relation.KindBool:
		return v.I != 0
	case relation.KindInt:
		return v.I
	case relation.KindFloat:
		switch {
		case math.IsNaN(v.F):
			return "NaN"
		case math.IsInf(v.F, 1):
			return "+Inf"
		case math.IsInf(v.F, -1):
			return "-Inf"
		}
		return v.F
	case relation.KindString:
		return v.S
	case relation.KindBytes:
		return base64.StdEncoding.EncodeToString(v.B)
	default:
		return nil
	}
}

// Handler returns the service's HTTP mux: /query, /ingest and /catalog
// on top of the telemetry debug mux (/metrics, /spans, /tasks,
// /debug/pprof).
func (s *Server) Handler() http.Handler {
	s.init()
	mux := telemetry.NewDebugMux(telemetry.Default(), s.Tracer, s.Tasks)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/catalog", s.handleCatalog)
	return mux
}

type queryRequest struct {
	Tenant string `json:"tenant"`
	SQL    string `json:"sql"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	nocache := r.URL.Query().Get("nocache") == "1"
	resp, err := s.Query(r.Context(), req.Tenant, req.SQL, nocache)
	if err != nil {
		code := http.StatusInternalServerError
		if he, ok := err.(*httpError); ok {
			code = he.code
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeJSON(w, resp)
}

type ingestRequest struct {
	Tenant   string  `json:"tenant"`
	Relation string  `json:"relation"`
	Rows     [][]any `json:"rows"`
}

type ingestResponse struct {
	Rows       int    `json:"rows"`
	Generation uint64 `json:"generation"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	st, err := s.Catalog.Store(req.Tenant, req.Relation)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	rows, err := decodeRows(st.ScanSchema(), req.Rows)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Done()
	if err := st.AppendSegment(rows); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	mIngestedSegments.Inc()
	writeJSON(w, ingestResponse{Rows: len(rows), Generation: st.Generation()})
}

// decodeRows converts JSON cells to relation values by column kind,
// inverting RenderRows (numbers arrive as float64; ints must be whole).
func decodeRows(sch relation.Schema, in [][]any) ([]relation.Row, error) {
	rows := make([]relation.Row, len(in))
	for i, cells := range in {
		if len(cells) != sch.Len() {
			return nil, fmt.Errorf("serve: row %d has %d cells, schema has %d", i, len(cells), sch.Len())
		}
		row := make(relation.Row, len(cells))
		for j, cell := range cells {
			v, err := decodeCell(sch.Cols[j].Kind, cell)
			if err != nil {
				return nil, fmt.Errorf("serve: row %d col %s: %w", i, sch.Cols[j].Name, err)
			}
			row[j] = v
		}
		rows[i] = row
	}
	return rows, nil
}

func decodeCell(k relation.Kind, cell any) (relation.Value, error) {
	if cell == nil {
		return relation.Null(), nil
	}
	switch k {
	case relation.KindBool:
		b, ok := cell.(bool)
		if !ok {
			return relation.Value{}, fmt.Errorf("want bool, got %T", cell)
		}
		return relation.Bool(b), nil
	case relation.KindInt:
		f, ok := cell.(float64)
		if !ok || f != math.Trunc(f) {
			return relation.Value{}, fmt.Errorf("want integer, got %v", cell)
		}
		return relation.Int(int64(f)), nil
	case relation.KindFloat:
		switch c := cell.(type) {
		case float64:
			return relation.Float(c), nil
		case string: // NaN / +Inf / -Inf round-trip
			f, err := strconv.ParseFloat(c, 64)
			if err != nil {
				return relation.Value{}, fmt.Errorf("want float, got %q", c)
			}
			return relation.Float(f), nil
		}
		return relation.Value{}, fmt.Errorf("want float, got %T", cell)
	case relation.KindString:
		s, ok := cell.(string)
		if !ok {
			return relation.Value{}, fmt.Errorf("want string, got %T", cell)
		}
		return relation.Str(s), nil
	case relation.KindBytes:
		s, ok := cell.(string)
		if !ok {
			return relation.Value{}, fmt.Errorf("want base64 string, got %T", cell)
		}
		b, err := base64.StdEncoding.DecodeString(s)
		if err != nil {
			return relation.Value{}, err
		}
		return relation.Bytes(b), nil
	case relation.KindNull:
		// An untyped (mixed-kind) column — extract-sealed stores declare
		// these — accepts any JSON cell; the kind is inferred per value.
		switch c := cell.(type) {
		case bool:
			return relation.Bool(c), nil
		case float64:
			if c == math.Trunc(c) {
				return relation.Int(int64(c)), nil
			}
			return relation.Float(c), nil
		case string:
			return relation.Str(c), nil
		}
		return relation.Value{}, fmt.Errorf("want scalar, got %T", cell)
	default:
		return relation.Value{}, fmt.Errorf("unsupported kind %s", k)
	}
}

type catalogRelation struct {
	Name       string `json:"name"`
	Schema     string `json:"schema"`
	Segments   int    `json:"segments"`
	Generation uint64 `json:"generation"`
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	names, err := s.Catalog.Relations(tenant)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	out := make([]catalogRelation, 0, len(names))
	for _, name := range names {
		st, err := s.Catalog.Store(tenant, name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		refs, err := st.Segments(engine.Pushdown{})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		out = append(out, catalogRelation{
			Name:       name,
			Schema:     st.ScanSchema().String(),
			Segments:   len(refs),
			Generation: st.Generation(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// Shutdown drains the server: new queries and ingests get 503, the
// in-flight ones run to completion (up to grace), then a persistent
// executor pool is released if the executor exposes Close. Returns
// false if the grace window expired with work still in flight.
func (s *Server) Shutdown(grace time.Duration) bool {
	s.init()
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	drained := true
	select {
	case <-done:
	case <-time.After(grace):
		drained = false
	}
	if c, ok := s.Exec.(interface{ Close() }); ok {
		c.Close()
	}
	return drained
}

// lruCache is a small mutex-guarded LRU. cap <= -1 disables it (every
// get misses, puts are dropped); it has no expiry — result entries are
// implicitly expired by generation-bearing keys going cold.
type lruCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List
	m   map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRU(cap int) *lruCache {
	if cap < 0 {
		cap = 0
	}
	return &lruCache{cap: cap, ll: list.New(), m: map[string]*list.Element{}}
}

func (c *lruCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) put(key string, val any) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key, val})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*lruEntry).key)
	}
}

// Len reports live entries (tests).
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
