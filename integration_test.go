package ivnt

// End-to-end integration tests across module boundaries: trace files on
// disk → distributed extraction → result store → data mining — the
// complete Fig. 1 workflow, including the DBC documentation path.

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ivnt/internal/cluster"
	"ivnt/internal/core"
	"ivnt/internal/engine"
	"ivnt/internal/gen"
	"ivnt/internal/inhouse"
	"ivnt/internal/mining/anomaly"
	"ivnt/internal/mining/assoc"
	"ivnt/internal/mining/transition"
	"ivnt/internal/protocol/dbc"
	"ivnt/internal/rules"
	"ivnt/internal/store"
	"ivnt/internal/trace"
)

func TestFullWorkflowFilesToMining(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	// 1. Record a journey to disk (the on-board logger of Fig. 1).
	dataset := gen.Build(gen.SYN)
	journey := dataset.Generate(15000)
	tracePath := filepath.Join(dir, "journey.ivtr")
	if err := trace.WriteFile(tracePath, journey); err != nil {
		t.Fatal(err)
	}
	catPath := filepath.Join(dir, "catalog.json")
	if err := rules.SaveCatalog(catPath, dataset.Catalog); err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "domain.json")
	if err := rules.SaveConfig(cfgPath, dataset.DefaultConfig()); err != nil {
		t.Fatal(err)
	}

	// 2. Off-board: load everything back and run the pipeline.
	loaded, err := trace.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := rules.LoadCatalog(catPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := rules.LoadConfig(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := core.New(catalog, cfg, engine.NewLocal(0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.RunTrace(ctx, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if res.State.NumRows() == 0 {
		t.Fatal("empty state representation")
	}

	// 3. Persist into the result database and read back.
	db, err := store.Open(filepath.Join(dir, "results"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WriteResult(cfg.Name, res, "local", loaded.Len()); err != nil {
		t.Fatal(err)
	}
	tb, err := db.ReadState(cfg.Name)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != res.State.NumRows() {
		t.Fatalf("stored states = %d, want %d", tb.NumRows(), res.State.NumRows())
	}

	// 4. Mine the stored representation with all three applications.
	if g, err := transition.Build(tb); err != nil || g.NumStates() == 0 {
		t.Fatalf("transition graph: %v (%d states)", err, g.NumStates())
	}
	_ = assoc.Mine(tb, assoc.Options{MinSupport: 0.05, MinConfidence: 0.8, MaxItems: 2})
	as := anomaly.Detect(tb, 3)
	if len(as) != 3 {
		t.Fatalf("anomalies = %d", len(as))
	}
}

func TestDBCWorkflowMatchesJSONCatalog(t *testing.T) {
	// The same physical layout documented twice — once as a JSON
	// catalog, once as a DBC — must extract identical values.
	const dbcText = `VERSION "x"
BO_ 3 Wiper: 4 BCM
 SG_ wpos : 7|16@0+ (0.5,0) [0|100] "deg" IC
 SG_ wvel : 23|16@0+ (1,0) [0|10] "" IC
`
	db, err := dbc.Parse(strings.NewReader(dbcText))
	if err != nil {
		t.Fatal(err)
	}
	fromDBC, err := db.ToCatalog("FC")
	if err != nil {
		t.Fatal(err)
	}
	manual := &rules.Catalog{Translations: []rules.Translation{
		{SID: "wpos", Channel: "FC", MsgID: 3, FirstByte: 0, LastByte: 1,
			Rule: "0.5 * ube(lrel, 0, 2)", Class: rules.ClassNumeric},
		{SID: "wvel", Channel: "FC", MsgID: 3, FirstByte: 2, LastByte: 3,
			Rule: "ube(lrel, 0, 2)", Class: rules.ClassNumeric},
	}}

	msg, _ := db.Message(3)
	tr := &trace.Trace{}
	for i := 0; i < 50; i++ {
		f, err := msg.Frame(map[string]float64{"wpos": float64(i % 90), "wvel": float64(i % 3)})
		if err != nil {
			t.Fatal(err)
		}
		tr.Append(trace.ByteTuple{T: float64(i) * 0.1, Channel: "FC", MsgID: 3,
			Payload: f.Data, Info: trace.MsgInfo{Protocol: trace.ProtoCAN, DLC: f.DLC()}})
	}

	cfg := &rules.DomainConfig{Name: "w", SIDs: []string{"wpos", "wvel"}}
	run := func(cat *rules.Catalog) []string {
		fw, err := core.New(cat, cfg, engine.NewLocal(1))
		if err != nil {
			t.Fatal(err)
		}
		res, err := fw.RunTrace(context.Background(), tr)
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]string, res.State.NumRows())
		for i := range keys {
			keys[i] = res.State.StateKey(i)
		}
		return keys
	}
	a, b := run(fromDBC), run(manual)
	if len(a) != len(b) {
		t.Fatalf("state counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("state %d differs between DBC and JSON catalogs", i)
		}
	}
}

func TestClusterAndBaselineAgreeOnFleet(t *testing.T) {
	// Three-way agreement on extracted instance counts: local engine,
	// TCP cluster, and the sequential in-house tool.
	ctx := context.Background()
	dataset := gen.Build(gen.STA)
	journey := dataset.Generate(8000)
	sids := dataset.SelectSIDs(7)
	cfg := &rules.DomainConfig{Name: "sta7", SIDs: sids}

	addrs, stop, err := cluster.StartLocalCluster(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	count := func(exec engine.Executor) int {
		fw, err := core.New(dataset.Catalog, cfg, exec)
		if err != nil {
			t.Fatal(err)
		}
		_, exStats, _, err := fw.ExtractAndReduce(ctx, journey.ToRelation(6))
		if err != nil {
			t.Fatal(err)
		}
		return exStats.RowsOut
	}
	localN := count(engine.NewLocal(2))
	clusterN := count(&cluster.Driver{Addrs: addrs})

	tool, err := inhouse.New(dataset.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if err := tool.Ingest(journey); err != nil {
		t.Fatal(err)
	}
	extracted, err := tool.Extract(sids...)
	if err != nil {
		t.Fatal(err)
	}
	inhouseN := 0
	for _, inst := range extracted {
		inhouseN += len(inst)
	}

	if localN != clusterN || localN != inhouseN {
		t.Fatalf("extraction counts disagree: local=%d cluster=%d inhouse=%d",
			localN, clusterN, inhouseN)
	}
}

func TestTraceCSVInterop(t *testing.T) {
	// The CSV trace form must survive a full round trip through disk
	// and still drive the pipeline.
	dataset := gen.Build(gen.SYN)
	journey := dataset.Generate(2000)
	dir := t.TempDir()
	path := filepath.Join(dir, "journey.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(f, journey); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	back, err := trace.ReadCSV(g)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := core.New(dataset.Catalog, dataset.DefaultConfig(), engine.NewLocal(0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fw.RunTrace(context.Background(), back)
	if err != nil {
		t.Fatal(err)
	}
	if res.State.NumRows() == 0 {
		t.Fatal("pipeline produced nothing from CSV round trip")
	}
}
