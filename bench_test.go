package ivnt

// Benchmarks regenerating the paper's evaluation (one per table and
// figure, plus the DESIGN.md ablations) at bench-friendly scales. The
// full paper-shaped sweeps with printed tables run via
//
//	go run ./cmd/benchmark -exp all
//
// these testing.B entry points keep the same code paths under
// `go test -bench=. -benchmem`.

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"ivnt/internal/bench"
	"ivnt/internal/core"
	"ivnt/internal/engine"
	"ivnt/internal/gen"
	"ivnt/internal/inhouse"
)

var benchCtx = context.Background()

// BenchmarkTable5Stats regenerates Table 5 (data set statistics).
func BenchmarkTable5Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table5(0.0005)
		if len(rows) != 3 {
			b.Fatal("table 5 incomplete")
		}
	}
}

// benchFig5 measures one Fig. 5 configuration: lines 3–11 over a fixed
// example count of one data set.
func benchFig5(b *testing.B, dataset string, examples int) {
	spec, err := gen.ByName(dataset)
	if err != nil {
		b.Fatal(err)
	}
	d := gen.Build(spec)
	tr := d.Generate(examples)
	fw, err := core.New(d.Catalog, d.DefaultConfig(), engine.NewLocal(0))
	if err != nil {
		b.Fatal(err)
	}
	kb := tr.ToRelation(runtime.GOMAXPROCS(0) * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := fw.ExtractAndReduce(benchCtx, kb); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(examples), "examples")
}

// BenchmarkFig5 regenerates the Fig. 5 series: per data set, two
// example counts showing the linear growth.
func BenchmarkFig5(b *testing.B) {
	for _, dataset := range []string{"SYN", "LIG", "STA"} {
		for _, examples := range []int{5000, 20000} {
			b.Run(fmt.Sprintf("%s/n=%d", dataset, examples), func(b *testing.B) {
				benchFig5(b, dataset, examples)
			})
		}
	}
}

// BenchmarkTable6Proposed measures the proposed pipeline's extraction
// time per (journeys, signals) cell of Table 6.
func BenchmarkTable6Proposed(b *testing.B) {
	d := gen.Build(gen.LIG)
	for _, journeys := range []int{1, 3} {
		fleet := gen.GenerateJourneys(gen.LIG, journeys, 10000)
		for _, nSignals := range []int{9, 89} {
			b.Run(fmt.Sprintf("journeys=%d/signals=%d", journeys, nSignals), func(b *testing.B) {
				cfg := d.DefaultConfig()
				cfg.Name = "bench"
				cfg.SIDs = d.SelectSIDs(nSignals)
				fw, err := core.New(d.Catalog, cfg, engine.NewLocal(0))
				if err != nil {
					b.Fatal(err)
				}
				parts := runtime.GOMAXPROCS(0) * 2
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, j := range fleet {
						if _, _, _, err := fw.ExtractAndReduce(benchCtx, j.ToRelation(parts)); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}

// BenchmarkTable6Inhouse measures the baseline's ingest cost (its
// extraction time by definition, independent of #signals).
func BenchmarkTable6Inhouse(b *testing.B) {
	d := gen.Build(gen.LIG)
	for _, journeys := range []int{1, 3} {
		fleet := gen.GenerateJourneys(gen.LIG, journeys, 10000)
		b.Run(fmt.Sprintf("journeys=%d", journeys), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tool, err := inhouse.New(d.Catalog)
				if err != nil {
					b.Fatal(err)
				}
				for _, j := range fleet {
					if err := tool.Ingest(j); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationPreselect measures A1's two variants.
func BenchmarkAblationPreselect(b *testing.B) {
	d := gen.Build(gen.LIG)
	tr := d.Generate(10000)
	kb := tr.ToRelation(runtime.GOMAXPROCS(0) * 2)
	cfg := d.DefaultConfig()
	cfg.SIDs = d.SelectSIDs(9)
	for _, preselect := range []bool{true, false} {
		name := "with-preselect"
		if !preselect {
			name = "interpret-all"
		}
		b.Run(name, func(b *testing.B) {
			fw, err := core.New(d.Catalog, cfg, engine.NewLocal(0))
			if err != nil {
				b.Fatal(err)
			}
			if !preselect {
				fw.Interp.Preselect = false
				fw.Interp.FullCatalog = d.Catalog.Translations
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := fw.ExtractAndReduce(benchCtx, kb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScalingWorkers measures A2: the same job on 1, 2, 4, ...
// local workers.
func BenchmarkScalingWorkers(b *testing.B) {
	d := gen.Build(gen.SYN)
	tr := d.Generate(20000)
	maxW := runtime.GOMAXPROCS(0)
	kb := tr.ToRelation(maxW * 2)
	for w := 1; w <= maxW; w *= 2 {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			fw, err := core.New(d.Catalog, d.DefaultConfig(), engine.NewLocal(w))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := fw.ExtractAndReduce(benchCtx, kb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFullPipeline measures the complete Algorithm 1 (including
// type-dependent processing and the state representation), the cost a
// domain pays per journey end to end.
func BenchmarkFullPipeline(b *testing.B) {
	d := gen.Build(gen.SYN)
	tr := d.Generate(10000)
	fw, err := core.New(d.Catalog, d.DefaultConfig(), engine.NewLocal(0))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fw.RunTrace(benchCtx, tr); err != nil {
			b.Fatal(err)
		}
	}
}
