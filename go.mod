module ivnt

go 1.22
