package ivnt

// CLI integration: builds the command binaries once and drives the
// documented workflow — tracegen → inspect → extract (with store) →
// mine — end to end through their main entry points.

import (
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildCommands compiles the CLI binaries into a temp dir.
func buildCommands(t *testing.T, names ...string) map[string]string {
	t.Helper()
	dir := t.TempDir()
	out := map[string]string{}
	for _, name := range names {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, msg)
		}
		out[name] = bin
	}
	return out
}

func runCmd(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestCLIWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration is slow; skipped with -short")
	}
	bins := buildCommands(t, "tracegen", "inspect", "extract", "mine")
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "syn.ivtr")
	catPath := filepath.Join(dir, "cat.json")
	cfgPath := filepath.Join(dir, "dom.json")
	storeDir := filepath.Join(dir, "results")

	out := runCmd(t, bins["tracegen"], "-dataset", "SYN", "-n", "8000",
		"-o", tracePath, "-catalog", catPath, "-config", cfgPath)
	if !strings.Contains(out, "8000 examples") {
		t.Fatalf("tracegen output:\n%s", out)
	}

	out = runCmd(t, bins["inspect"], "-trace", tracePath, "-catalog", catPath)
	for _, frag := range []string{"rows:     8000", "signal classification", "branch alpha"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("inspect output missing %q:\n%s", frag, out)
		}
	}

	out = runCmd(t, bins["extract"], "-trace", tracePath, "-catalog", catPath,
		"-config", cfgPath, "-store", storeDir, "-maxrows", "3")
	for _, frag := range []string{"K_s rows:", "reduced rows:", "results stored under"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("extract output missing %q:\n%s", frag, out)
		}
	}

	out = runCmd(t, bins["mine"], "-store", storeDir, "-domain", "")
	if !strings.Contains(out, "SYN") {
		t.Fatalf("mine listing:\n%s", out)
	}
	out = runCmd(t, bins["mine"], "-store", storeDir, "-domain", "SYN", "-app", "anomaly", "-top", "2")
	if !strings.Contains(out, "culprit=") {
		t.Fatalf("mine anomaly:\n%s", out)
	}
	out = runCmd(t, bins["mine"], "-store", storeDir, "-domain", "SYN", "-app", "graph")
	if !strings.Contains(out, "transitions") {
		t.Fatalf("mine graph:\n%s", out)
	}
}

func TestCLIClusterExtraction(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration is slow; skipped with -short")
	}
	bins := buildCommands(t, "tracegen", "extract", "executor")
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "syn.ivtr")
	catPath := filepath.Join(dir, "cat.json")
	cfgPath := filepath.Join(dir, "dom.json")
	runCmd(t, bins["tracegen"], "-dataset", "SYN", "-n", "4000",
		"-o", tracePath, "-catalog", catPath, "-config", cfgPath)

	// Start an executor process on a fixed loopback port.
	const addr = "127.0.0.1:39077"
	exe := exec.Command(bins["executor"], "-listen", addr)
	if err := exe.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = exe.Process.Kill()
		_, _ = exe.Process.Wait()
	}()
	// Wait for the executor to listen.
	for i := 0; ; i++ {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			break
		}
		if i > 100 {
			t.Fatalf("executor never came up: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	out := runCmd(t, bins["extract"], "-trace", tracePath, "-catalog", catPath,
		"-config", cfgPath, "-cluster", addr, "-maxrows", "2")
	if !strings.Contains(out, "cluster[1 executors") {
		t.Fatalf("extract did not use the cluster:\n%s", out)
	}
	if !strings.Contains(out, "K_s rows:") {
		t.Fatalf("cluster extraction output:\n%s", out)
	}
}
