// Quickstart: generate a small synthetic trace, parameterize a domain,
// run the full preprocessing pipeline and print the state
// representation — the minimal end-to-end tour of the framework.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"ivnt/internal/core"
	"ivnt/internal/engine"
	"ivnt/internal/gen"
)

func main() {
	log.SetFlags(0)

	// 1. A synthetic data set standing in for a recorded journey: the
	//    SYN set of the paper's evaluation (13 signal types across CAN,
	//    LIN and SOME/IP channels). Build() also yields the rules
	//    catalog — the documentation U_rel — describing every signal.
	dataset := gen.Build(gen.SYN)
	journey := dataset.Generate(30000)
	fmt.Printf("journey: %d message instances over %.1fs\n", journey.Len(), journey.Duration())

	// 2. One-time parameterization: which signals the domain analyzes,
	//    how to reduce (keep value changes) and process them.
	config := dataset.DefaultConfig()

	// 3. Run Algorithm 1 on the local data-parallel executor. Swap in
	//    a cluster.Driver to run the identical pipeline distributed.
	fw, err := core.New(dataset.Catalog, config, engine.NewLocal(0))
	if err != nil {
		log.Fatal(err)
	}
	res, err := fw.RunTrace(context.Background(), journey)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect: reduction achieved, per-signal classification, and
	//    the homogeneous state representation ready for data mining.
	fmt.Printf("interpreted %d signal instances, reduced to %d (ratio %.3f)\n",
		res.KsRows, res.ReduceStats.RowsOut, res.ReductionRatio())
	for _, s := range res.Signals {
		fmt.Println(" ", s.Summary())
	}
	fmt.Printf("\nstate representation (%d states, first 10):\n\n", res.State.NumRows())
	if err := res.State.Render(os.Stdout, 10); err != nil {
		log.Fatal(err)
	}
}
