// Monitor: online trace processing — the streaming counterpart of the
// batch pipeline. Messages arrive one at a time (here: replayed from a
// generated journey), a single signal is interpreted on the fly with
// its catalog rule, and the *online* SWAB segmenter emits symbolized
// (level, trend) segments while the vehicle is still driving — the
// paper's preprocessing applied in-stream instead of off-board.
package main

import (
	"fmt"
	"log"

	"ivnt/internal/dsp/sax"
	"ivnt/internal/dsp/swab"
	"ivnt/internal/expr"
	"ivnt/internal/gen"
	"ivnt/internal/relation"
)

func main() {
	log.SetFlags(0)

	// A generated journey stands in for the live bus.
	dataset := gen.Build(gen.SYN)
	journey := dataset.Generate(20000)

	// Watch one fast numeric signal; compile its interpretation rule
	// once (the same rule text the batch pipeline ships to executors).
	const watched = "SYN.num00"
	tuples := dataset.Catalog.Lookup(watched)
	if len(tuples) == 0 {
		log.Fatalf("signal %s not documented", watched)
	}
	u := tuples[0]
	schema := relation.NewSchema(
		relation.Column{Name: "lrel", Kind: relation.KindBytes},
	)
	prog, err := expr.Compile(u.Rule, schema)
	if err != nil {
		log.Fatal(err)
	}

	// Online segmentation: z-normalization parameters come from a
	// short warm-up window, then SWAB streams.
	const alphabet = 5
	stream := swab.NewStream(swab.Options{BufferSize: 40, MaxError: 0.5})
	var (
		warmup     []float64
		warmupT    []float64
		mean, std  float64
		calibrated bool
		ts, zs     []float64
		segments   int
	)
	fmt.Printf("monitoring %s (rule: %s)\n\n", watched, u.Rule)

	emit := func(segs []swab.Segment) {
		for _, s := range segs {
			segments++
			z := s.Mean(ts, zs)
			sym, err := sax.Symbol(z, alphabet)
			if err != nil {
				log.Fatal(err)
			}
			if segments <= 12 {
				fmt.Printf("t=%8.2fs  segment %3d: (%s, %s)\n",
					ts[s.Start], segments, sax.LevelName(sym, alphabet),
					swab.Trend(s.Slope, 0.1))
			}
		}
	}

	for i := range journey.Tuples {
		k := &journey.Tuples[i]
		if k.Channel != u.Channel || k.MsgID != u.MsgID {
			continue
		}
		if u.LastByte >= len(k.Payload) {
			continue
		}
		lrel := k.Payload[u.FirstByte : u.LastByte+1]
		v := prog.Eval(expr.SingleRowEnv{Row: relation.Row{relation.Bytes(lrel)}})
		if v.IsNull() {
			continue
		}
		x := v.AsFloat()
		if !calibrated {
			warmup = append(warmup, x)
			warmupT = append(warmupT, k.T)
			if len(warmup) == 200 {
				_, mean, std = sax.ZNormalize(warmup)
				if std == 0 {
					std = 1
				}
				calibrated = true
				for j, w := range warmup {
					ts = append(ts, warmupT[j])
					zs = append(zs, (w-mean)/std)
					emit(stream.Push(ts[len(ts)-1], zs[len(zs)-1]))
				}
			}
			continue
		}
		ts = append(ts, k.T)
		zs = append(zs, (x-mean)/std)
		emit(stream.Push(k.T, (x-mean)/std))
	}
	emit(stream.Flush())

	fmt.Printf("\n%d segments emitted online from %d message instances\n", segments, journey.Len())
}
