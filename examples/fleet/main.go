// Fleet: the Table 6 situation end to end — multiple journeys of
// massive traces, extraction of a signal subset on a real TCP cluster
// (executors spawned on loopback), compared against the sequential
// in-house baseline. Demonstrates that the identical parameterization
// runs locally or distributed.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ivnt/internal/cluster"
	"ivnt/internal/core"
	"ivnt/internal/engine"
	"ivnt/internal/gen"
	"ivnt/internal/inhouse"
	"ivnt/internal/rules"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	const (
		journeys  = 4
		rowsEach  = 30000
		nSignals  = 9
		executors = 3
	)
	fmt.Printf("fleet: %d journeys x %d rows, extracting %d signals\n\n", journeys, rowsEach, nSignals)

	dataset := gen.Build(gen.LIG)
	fleet := gen.GenerateJourneys(gen.LIG, journeys, rowsEach)
	config := &rules.DomainConfig{
		Name:        "fleet-lights",
		SIDs:        dataset.SelectSIDs(nSignals),
		Constraints: []rules.Constraint{rules.ChangeConstraint("*")},
	}

	// Spin up a real TCP cluster on loopback (in production these are
	// `cmd/executor` processes on separate hosts).
	addrs, stop, err := cluster.StartLocalCluster(ctx, executors)
	if err != nil {
		log.Fatal(err)
	}
	defer stop()
	drv := &cluster.Driver{Addrs: addrs, SlotsPerExecutor: 2}

	run := func(name string, exec engine.Executor) float64 {
		fw, err := core.New(dataset.Catalog, config, exec)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		extracted := 0
		for _, j := range fleet {
			_, exStats, _, err := fw.ExtractAndReduce(ctx, j.ToRelation(8))
			if err != nil {
				log.Fatal(err)
			}
			extracted += exStats.RowsOut
		}
		sec := time.Since(start).Seconds()
		fmt.Printf("%-22s %8.3fs  (%d signal instances extracted)\n", name, sec, extracted)
		return sec
	}

	proposedLocal := run("proposed (local)", engine.NewLocal(0))
	proposedCluster := run("proposed ("+drv.Name()+")", drv)

	// The in-house baseline: ingest-everything, sequential.
	tool, err := inhouse.New(dataset.Catalog)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	for _, j := range fleet {
		if err := tool.Ingest(j); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := tool.Extract(config.SIDs...); err != nil {
		log.Fatal(err)
	}
	inhouseSec := time.Since(start).Seconds()
	fmt.Printf("%-22s %8.3fs  (%d instances interpreted on ingest)\n",
		"in-house (sequential)", inhouseSec, tool.StoredInstances())

	fmt.Println()
	fmt.Printf("speedup vs in-house: local %.2fx, cluster %.2fx\n",
		inhouseSec/proposedLocal, inhouseSec/proposedCluster)
	fmt.Println("(the paper reports 5.7x for 9 signals at 12 journeys on 10 Spark nodes)")
}
