// Wiper: the paper's running example built by hand. A wiper message
// (m_id 3 on FA-CAN) carries wpos and wvel; a LIN frame carries the
// wiper type; the trace contains a stuck-wiper fault (value spike) and
// a cycle-time violation. The domain parameterization extracts the
// wiper signals, keeps value changes AND violations, and extends the
// trace with the wposGap meta signal of Table 2.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"

	"ivnt/internal/core"
	"ivnt/internal/engine"
	"ivnt/internal/protocol"
	"ivnt/internal/protocol/can"
	"ivnt/internal/rules"
	"ivnt/internal/trace"
)

func main() {
	log.SetFlags(0)

	// The wiper message layout, as a DBC-style definition (Fig. 2:
	// bytes 1-2 wpos with v = 0.5·raw, bytes 3-4 wvel).
	wiperMsg := can.MessageDef{
		ID: 3, Name: "WiperStatus", Channel: "FC", Length: 4, CycleTime: 0.1,
		Signals: []protocol.SignalDef{
			{Name: "wpos", StartBit: 0, BitLen: 16, Scale: 0.5},
			{Name: "wvel", StartBit: 16, BitLen: 16},
		},
	}
	if err := wiperMsg.Validate(); err != nil {
		log.Fatal(err)
	}

	// Record a journey: the wiper sweeps 0°→90°→0° at 10 Hz. At t≈12 s
	// the position sensor glitches (spike); at t≈20 s three cycles are
	// lost (cycle-time violation).
	tr := &trace.Trace{}
	tt := 0.0
	for i := 0; i < 300; i++ {
		phase := math.Mod(tt, 9)
		pos := phase * 20
		if phase > 4.5 {
			pos = (9 - phase) * 20
		}
		vel := 1.0
		if i == 120 {
			pos = 800 // sensor glitch
		}
		frame, err := wiperMsg.Frame(map[string]float64{"wpos": pos, "wvel": vel})
		if err != nil {
			log.Fatal(err)
		}
		tr.Append(trace.ByteTuple{
			T: tt, Channel: "FC", MsgID: 3, Payload: frame.Data,
			Info: trace.MsgInfo{Protocol: trace.ProtoCAN, DLC: frame.DLC()},
		})
		if i == 200 {
			tt += 0.4 // three lost cycles
		}
		tt += 0.1
	}

	// The documentation: translation tuples generated straight from
	// the message layout (Table 1's U_rel rows).
	wposDef, _ := wiperMsg.Signal("wpos")
	wvelDef, _ := wiperMsg.Signal("wvel")
	relWpos, relWvel := *wposDef, *wvelDef
	relWvel.StartBit = 0 // positions relative to the extracted bytes
	catalog := &rules.Catalog{Translations: []rules.Translation{
		{SID: "wpos", Channel: "FC", MsgID: 3, FirstByte: 0, LastByte: 1,
			Rule: relWpos.RuleExprCol("lrel"), Class: rules.ClassNumeric,
			Unit: "deg", CycleTime: wiperMsg.CycleTime},
		{SID: "wvel", Channel: "FC", MsgID: 3, FirstByte: 2, LastByte: 3,
			Rule: relWvel.RuleExprCol("lrel"), Class: rules.ClassNumeric,
			Unit: "rad/min", CycleTime: wiperMsg.CycleTime},
	}}

	// The domain parameterization: keep changes and cycle violations,
	// extend with the wposGap meta signal (Table 2).
	config := &rules.DomainConfig{
		Name: "wiper",
		SIDs: []string{"wpos", "wvel"},
		Constraints: []rules.Constraint{
			rules.ChangeConstraint("*"),
			rules.CycleViolationConstraint("wpos", wiperMsg.CycleTime),
		},
		Extensions: []rules.Extension{
			// Rounded to ms so the rendered table stays readable.
			{WID: "wposGap", SID: "wpos", Expr: "round(gap(t) * 1000) / 1000"},
		},
	}

	fw, err := core.New(catalog, config, engine.NewLocal(0))
	if err != nil {
		log.Fatal(err)
	}
	res, err := fw.RunTrace(context.Background(), tr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trace: %d rows; interpreted: %d; after reduction: %d\n",
		tr.Len(), res.KsRows, res.ReduceStats.RowsOut)
	for _, s := range res.Signals {
		fmt.Println(" ", s.Summary())
	}

	// The glitch survives as an outlier row; the violation as a gap in
	// wposGap exceeding the cycle time.
	fmt.Println("\npotential errors surfaced by the pipeline:")
	gapCol, err := res.State.Column("wposGap")
	if err != nil {
		log.Fatal(err)
	}
	wposCol, err := res.State.Column("wpos")
	if err != nil {
		log.Fatal(err)
	}
	prevWpos := ""
	for i := range gapCol {
		report := ""
		// Forward-fill repeats the cell until the next wpos row;
		// report each glitch once.
		if len(wposCol[i]) >= 7 && wposCol[i][:7] == "outlier" && wposCol[i] != prevWpos {
			report = "sensor glitch: " + wposCol[i]
		}
		prevWpos = wposCol[i]
		var g float64
		if _, err := fmt.Sscanf(gapCol[i], "%f", &g); err == nil && g > wiperMsg.CycleTime*1.5 {
			report = fmt.Sprintf("cycle violation: gap %.1fs (nominal %.1fs)", g, wiperMsg.CycleTime)
		}
		if report != "" {
			fmt.Printf("  t=%-8.2f %s\n", res.State.Times[i], report)
		}
	}

	fmt.Printf("\nstate representation (%d states, first 12):\n\n", res.State.NumRows())
	if err := res.State.Render(os.Stdout, 12); err != nil {
		log.Fatal(err)
	}
}
