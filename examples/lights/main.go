// Lights: a LIG-style domain analysis (Table 4's scenario) with the
// downstream applications of Sec. 4.4 — association rule mining,
// transition graphs with rare-transition detection, and anomaly
// ranking with automatic extension-rule derivation.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"ivnt/internal/core"
	"ivnt/internal/engine"
	"ivnt/internal/gen"
	"ivnt/internal/mining/anomaly"
	"ivnt/internal/mining/assoc"
	"ivnt/internal/mining/transition"
)

func main() {
	log.SetFlags(0)

	// The LIG data set: 180 light-function signal types. Analyze a
	// focused sub-domain of 12 signals, as a light-function specialist
	// would.
	dataset := gen.Build(gen.LIG)
	journey := dataset.Generate(60000)
	config := dataset.DefaultConfig()
	config.SIDs = dataset.SelectSIDs(12)

	fw, err := core.New(dataset.Catalog, config, engine.NewLocal(0))
	if err != nil {
		log.Fatal(err)
	}
	res, err := fw.RunTrace(context.Background(), journey)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline: %d trace rows -> %d interpreted -> %d reduced -> %d states\n\n",
		journey.Len(), res.KsRows, res.ReduceStats.RowsOut, res.State.NumRows())

	// Application 1: association rules over the state representation.
	fmt.Println("== association rules (Apriori) ==")
	ruleSet := assoc.Mine(res.State, assoc.Options{MinSupport: 0.05, MinConfidence: 0.85, MaxItems: 2})
	max := 8
	if len(ruleSet) < max {
		max = len(ruleSet)
	}
	for _, r := range ruleSet[:max] {
		fmt.Println(" ", r)
	}
	fmt.Printf("  (%d rules total)\n\n", len(ruleSet))

	// Application 2: the transition graph and its rare transitions.
	fmt.Println("== transition graph ==")
	graph, err := transition.Build(res.State)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d states, %d transitions\n", graph.NumStates(), graph.Transitions)
	rare := graph.Rare(1, 0.5)
	fmt.Printf("  %d rare transitions (count <= 1, prob <= 50%%)\n", len(rare))
	if len(rare) > 0 {
		tr0 := rare[0]
		fmt.Printf("  rarest: %.60s -> %.60s\n", tr0.FromLabel, tr0.ToLabel)
		path := graph.PathTo(tr0.To, 4)
		fmt.Printf("  chain into it: %d states (path analysis)\n", len(path))
	}
	dot, err := os.Create("lights-graph.dot")
	if err != nil {
		log.Fatal(err)
	}
	if err := graph.WriteDOT(dot, 1); err != nil {
		log.Fatal(err)
	}
	if err := dot.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  graph written to lights-graph.dot (rare edges in red)")
	fmt.Println()

	// Application 3: anomaly hot-spots, ranked by severity, and the
	// automatic derivation of a detection rule for further runs.
	fmt.Println("== anomaly detection ==")
	anomalies := anomaly.Detect(res.State, 5)
	fmt.Print(anomaly.Report(anomalies))
	if len(anomalies) > 0 {
		if ext, err := anomalies[0].ToExtension(); err == nil {
			fmt.Printf("derived extension rule: w_id=%s on %s: %s\n", ext.WID, ext.SID, ext.Expr)
		}
	}
}
